package perf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func trajPoint(label string, entries map[string]map[string]float64) *Point {
	p := &Point{Label: label, Source: "go-bench"}
	r := NewReport("go-bench")
	for name, m := range entries {
		r.Add(name, m)
	}
	r.sorted()
	p.Entries = r.Entries
	return p
}

func trajReport(entries map[string]map[string]float64) *Report {
	r := NewReport("go-bench")
	for name, m := range entries {
		r.Add(name, m)
	}
	return r
}

func findMovement(t *testing.T, ms []Movement, entry, metric string) Movement {
	t.Helper()
	for _, m := range ms {
		if m.Entry == entry && m.Metric == metric {
			return m
		}
	}
	t.Fatalf("no movement for (%s, %s) in %v", entry, metric, ms)
	return Movement{}
}

// TestTrajectoryVerdicts covers the three directional verdicts for both
// metric polarities: ns/op is lower-better, queries/sec higher-better.
func TestTrajectoryVerdicts(t *testing.T) {
	prev := trajPoint("pr5", map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1000, "queries/sec": 5000},
		"BenchmarkB": {"ns/op": 200},
	})
	cur := trajReport(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 2000, "queries/sec": 9000}, // time worse, throughput better
		"BenchmarkB": {"ns/op": 205},                       // inside the band
	})
	ms := Trajectory(prev, cur, 1.10, "ns/op", "queries/sec")

	if m := findMovement(t, ms, "BenchmarkA", "ns/op"); m.Verdict != VerdictRegression {
		t.Fatalf("A ns/op doubled: verdict %s, want regression (%v)", m.Verdict, m)
	}
	if m := findMovement(t, ms, "BenchmarkA", "queries/sec"); m.Verdict != VerdictImprovement {
		t.Fatalf("A queries/sec rose: verdict %s, want improvement (%v)", m.Verdict, m)
	}
	if m := findMovement(t, ms, "BenchmarkB", "ns/op"); m.Verdict != VerdictSteady {
		t.Fatalf("B ns/op +2.5%%: verdict %s, want steady (%v)", m.Verdict, m)
	}

	// Flip the throughput direction: a queries/sec drop is a regression.
	drop := trajReport(map[string]map[string]float64{
		"BenchmarkA": {"queries/sec": 2000},
	})
	if m := findMovement(t, Trajectory(prev, drop, 1.10, "queries/sec"),
		"BenchmarkA", "queries/sec"); m.Verdict != VerdictRegression {
		t.Fatalf("A queries/sec dropped: verdict %s, want regression", m.Verdict)
	}
}

// TestTrajectoryNoPrior exercises every shape of "no prior entry": a nil
// previous point (empty history), a benchmark new to this run, a metric
// absent from the prior entry, and prior values that cannot anchor a
// ratio — zero ns/op and NaN.
func TestTrajectoryNoPrior(t *testing.T) {
	cur := trajReport(map[string]map[string]float64{
		"BenchmarkNew": {"ns/op": 1234},
	})

	// Empty history: Latest() is nil.
	ms := Trajectory(nil, cur, 1.10, "ns/op")
	if m := findMovement(t, ms, "BenchmarkNew", "ns/op"); m.Verdict != VerdictNoPrior {
		t.Fatalf("nil prev: verdict %s, want no-prior", m.Verdict)
	} else if !math.IsNaN(m.Prev) || m.Ratio != 0 {
		t.Fatalf("nil prev: Prev=%v Ratio=%v, want NaN/0", m.Prev, m.Ratio)
	}

	prev := trajPoint("pr5", map[string]map[string]float64{
		"BenchmarkOld":  {"allocs/op": 3}, // no ns/op metric
		"BenchmarkZero": {"ns/op": 0},     // zero prior time
		"BenchmarkNaN":  {"ns/op": math.NaN()},
	})
	cur2 := trajReport(map[string]map[string]float64{
		"BenchmarkNew":  {"ns/op": 1234}, // entry absent from prev
		"BenchmarkOld":  {"ns/op": 55},   // metric absent from prev entry
		"BenchmarkZero": {"ns/op": 55},
		"BenchmarkNaN":  {"ns/op": 55},
	})
	ms = Trajectory(prev, cur2, 1.10, "ns/op")
	for _, name := range []string{"BenchmarkNew", "BenchmarkOld", "BenchmarkZero", "BenchmarkNaN"} {
		if m := findMovement(t, ms, name, "ns/op"); m.Verdict != VerdictNoPrior {
			t.Fatalf("%s: verdict %s, want no-prior (%v)", name, m.Verdict, m)
		}
	}

	// A NaN *current* value must not classify either.
	curNaN := trajReport(map[string]map[string]float64{
		"BenchmarkZero": {"ns/op": math.NaN()},
	})
	prevOK := trajPoint("pr5", map[string]map[string]float64{
		"BenchmarkZero": {"ns/op": 100},
	})
	if m := findMovement(t, Trajectory(prevOK, curNaN, 1.10, "ns/op"),
		"BenchmarkZero", "ns/op"); m.Verdict != VerdictNoPrior {
		t.Fatalf("NaN current: verdict %s, want no-prior", m.Verdict)
	}

	// Both zero is not a regression or improvement: no anchor, no-prior.
	if m := findMovement(t, Trajectory(
		trajPoint("p", map[string]map[string]float64{"B": {"ns/op": 0}}),
		trajReport(map[string]map[string]float64{"B": {"ns/op": 0}}),
		1.10, "ns/op"), "B", "ns/op"); m.Verdict != VerdictNoPrior {
		t.Fatalf("0 -> 0: verdict %s, want no-prior", m.Verdict)
	}

	// Metrics missing from CURRENT entries simply produce no movement.
	if got := Trajectory(prevOK, trajReport(map[string]map[string]float64{
		"BenchmarkZero": {"allocs/op": 1},
	}), 1.10, "ns/op"); len(got) != 0 {
		t.Fatalf("metric absent from current: %d movements, want 0", len(got))
	}
}

func TestLowerIsBetter(t *testing.T) {
	cases := map[string]bool{
		"ns/op":        true,
		"allocs/op":    true,
		"B/op":         true,
		"delay_p95_ms": true,
		"events/sec":   false,
		"queries/sec":  false,
		"hit-rate":     false,
		"mystery":      true, // unknown defaults to cost
	}
	for metric, want := range cases {
		if got := LowerIsBetter(metric); got != want {
			t.Errorf("LowerIsBetter(%q) = %v, want %v", metric, got, want)
		}
	}
}

// TestHistoryRoundTrip: append, write, read back, and the missing-file
// bootstrap path.
func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_history.json")

	h, err := ReadHistory(path)
	if err != nil {
		t.Fatalf("ReadHistory on missing file: %v", err)
	}
	if h.Latest() != nil {
		t.Fatal("missing file: Latest() != nil")
	}

	h.Append("pr5", trajReport(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 100},
	}))
	h.Append("pr6", trajReport(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 90, "queries/sec": 4e6},
	}))
	if err := h.WriteHistory(path); err != nil {
		t.Fatal(err)
	}

	back, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 2 {
		t.Fatalf("round trip: %d points, want 2", len(back.Points))
	}
	latest := back.Latest()
	if latest.Label != "pr6" {
		t.Fatalf("Latest label %q, want pr6", latest.Label)
	}
	if v, ok := latest.Get("BenchmarkA").Metric("queries/sec"); !ok || v != 4e6 {
		t.Fatalf("latest queries/sec = %v %v, want 4e6 true", v, ok)
	}

	// A wrong schema must be rejected loudly, not misread.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9","points":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistory(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema: err = %v, want schema mismatch", err)
	}
}

func TestMovementString(t *testing.T) {
	m := Movement{Entry: "B", Metric: "ns/op", Prev: 100, Cur: 210, Ratio: 2.1, Verdict: VerdictRegression}
	if s := m.String(); !strings.Contains(s, "regression") || !strings.Contains(s, "2.10x") {
		t.Fatalf("String() = %q", s)
	}
	np := Movement{Entry: "B", Metric: "ns/op", Prev: math.NaN(), Cur: 55, Verdict: VerdictNoPrior}
	if s := np.String(); !strings.Contains(s, "no-prior") {
		t.Fatalf("String() = %q", s)
	}
}
