package driver

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/pkg/search"
)

// runChurnSession drives one Gnutella-style churn session — nodes
// attach to random online peers on login, isolate on logoff — and
// returns every query outcome in dispatch order. The only knob is
// SnapshotServe, so the two serving modes run the identical timeline.
func runChurnSession(t *testing.T, snapshotServe bool) ([]search.Result, *Session) {
	t.Helper()
	const nodes = 60
	var results []search.Result
	var s *Session
	spec := baseSpec(nodes)
	spec.Duration = 12 * 3600
	spec.Arrivals = Poisson{RatePerHour: 3}
	spec.Churn = &workload.ChurnConfig{MeanOnline: 3600, MeanOffline: 3600}
	spec.Content = core.ContentFunc(func(id topology.NodeID, key core.Key) bool {
		return int(id)%7 == int(key)%7
	})
	spec.TTL = 3
	spec.SnapshotServe = snapshotServe
	spec.OnLogin = func(id topology.NodeID) {
		for tries := 0; tries < 8 && s.Network().Node(id).Out.Len() < 3; tries++ {
			peer := topology.NodeID(s.TopoStream().Intn(nodes))
			if peer != id && s.IsOnline(peer) {
				s.Network().Connect(id, peer)
			}
		}
	}
	// Full isolation on logoff is what makes the all-online snapshot
	// equivalent to the live view: offline nodes have no edges at all.
	spec.OnLogoff = func(id topology.NodeID, _ float64) { s.Network().Isolate(id) }
	spec.OnQuery = func(id topology.NodeID, _ float64) {
		q := search.Query{
			ID:     s.NextQueryID(),
			Key:    core.Key(s.QueryStream(id).Intn(100)),
			Origin: id,
		}
		results = append(results, s.Do(q))
	}
	var err error
	s, err = New(spec, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return results, s
}

// TestSnapshotServeMatchesLiveView is the driver-layer differential:
// the same churn timeline served from coalesced snapshot epochs yields
// byte-identical query outcomes to live OnlineView dispatch, because
// logoff hooks fully isolate departing nodes.
func TestSnapshotServeMatchesLiveView(t *testing.T) {
	live, liveSess := runChurnSession(t, false)
	snap, snapSess := runChurnSession(t, true)
	if len(live) == 0 {
		t.Fatal("timeline dispatched no queries")
	}
	if len(live) != len(snap) {
		t.Fatalf("query counts diverged: live %d, snapshot %d", len(live), len(snap))
	}
	if liveSess.Store() != nil {
		t.Fatal("live session grew a store")
	}
	store := snapSess.Store()
	if store == nil {
		t.Fatal("snapshot session has no store")
	}
	// Churn between queries coalesced into epochs: more than the
	// initial freeze, at most one publish per dispatch.
	if e := store.Epoch(); e <= 1 || e > uint64(len(snap))+1 {
		t.Fatalf("store at epoch %d after %d queries", e, len(snap))
	}
	for i := range live {
		got := snap[i]
		if got.Epoch == 0 {
			t.Fatalf("query %d served without an epoch tag", i)
		}
		got.Epoch = 0
		if !reflect.DeepEqual(got, live[i]) {
			t.Fatalf("query %d diverged:\nsnapshot %+v\nlive     %+v", i, got, live[i])
		}
	}
}

// TestTopologyChangedRepublishes: an application mutating topology
// outside the session hooks marks it dirty and the next dispatch
// serves a fresh epoch.
func TestTopologyChangedRepublishes(t *testing.T) {
	spec := baseSpec(10)
	spec.Content = allContent
	spec.TTL = 2
	spec.SnapshotServe = true
	s, err := New(spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Network().Connect(0, 1)
	s.TopologyChanged()
	r := s.Do(search.Query{ID: 1, Key: 1, Origin: 0})
	if r.Epoch != 2 {
		t.Fatalf("first dispatch on epoch %d, want 2 (republished)", r.Epoch)
	}
	if r.Messages == 0 {
		t.Fatal("edge added before TopologyChanged not visible")
	}
	// No mutation since: the next dispatch reuses the epoch.
	r = s.Do(search.Query{ID: 2, Key: 1, Origin: 0})
	if r.Epoch != 2 {
		t.Fatalf("clean dispatch republished to epoch %d", r.Epoch)
	}
}
