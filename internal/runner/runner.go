// Package runner schedules independent simulation cells across a
// bounded worker pool.
//
// Every experiment in internal/experiments decomposes into cells: one
// isolated sim.Engine run each (a (mode, TTL) pair of Figure 1, one θ
// column of Figure 3(b), one ablation variant, ...). The engine itself
// is deliberately single-threaded for bit-for-bit reproducibility —
// see internal/sim — so all parallelism in this repository lives here,
// one level above it.
//
// The runner guarantees that results are independent of the worker
// count and of scheduling order:
//
//   - each cell's seed is fixed before execution starts (either set
//     explicitly by the caller or derived via DeriveSeed from stable
//     labels), never from shared mutable state;
//   - results are delivered in submission order, not completion order;
//   - a panicking cell is isolated (recovered, optionally retried) and
//     recorded in its Result instead of tearing down the process.
//
// Consequently Run with 1 worker and Run with N workers produce
// identical Result slices, and the cells.json artifact written by
// WriteArtifacts is byte-identical at any worker count.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Cell is one independent unit of simulation work. Cells must not
// share mutable state: the runner executes them concurrently.
type Cell struct {
	// Experiment groups cells into one logical experiment (one figure,
	// one ablation); artifacts and summaries aggregate by it.
	Experiment string
	// Name identifies the cell within its experiment ("static",
	// "dynamic-theta4", ...). (Experiment, Name) should be unique.
	Name string
	// Seed is the RNG seed passed to Run. Callers set it at
	// construction time — typically via DeriveSeed, or shared across
	// cells when an experiment needs paired workloads — so that it
	// never depends on scheduling.
	Seed uint64
	// Run executes the cell. The returned value must be
	// JSON-marshalable; it lands in cells.json verbatim. Long-running
	// cells may honor ctx, but are not required to.
	Run func(ctx context.Context, seed uint64) (any, error)
}

// Result is the outcome of one cell. The JSON-visible fields are fully
// deterministic (independent of worker count and wall clock); timing
// and panic stacks are kept out of the marshaled form so artifacts
// stay byte-comparable across runs.
type Result struct {
	Experiment string `json:"experiment"`
	Cell       string `json:"cell"`
	Seed       uint64 `json:"seed"`
	Value      any    `json:"value,omitempty"`
	Err        string `json:"error,omitempty"`
	// Attempts counts executions including retries. Simulations are
	// deterministic, so this too is stable across worker counts.
	Attempts int `json:"attempts"`
	// Wall is the cell's execution time (measurement only).
	Wall time.Duration `json:"-"`
	// Stack holds the most recent panic stack, for diagnostics.
	Stack string `json:"-"`
}

// Progress is a snapshot delivered after each completed cell.
type Progress struct {
	// Done and Total count cells; Failed counts cells whose final
	// attempt still errored.
	Done, Total, Failed int
	// Experiment and Cell identify the cell that just finished.
	Experiment, Cell string
	// Elapsed is the time since Run started; ETA extrapolates the
	// remaining time from the mean completed-cell rate.
	Elapsed, ETA time.Duration
}

// Options configures one Run invocation.
type Options struct {
	// Workers bounds concurrent cells; <= 0 means GOMAXPROCS.
	Workers int
	// Retries is how many times a failed (errored or panicked) cell is
	// re-executed before its error is recorded.
	Retries int
	// OnProgress, when non-nil, is invoked after every completed cell.
	// Calls are serialized; the callback must not block for long.
	OnProgress func(Progress)
}

// skippedErr marks cells never started because the context was
// canceled first.
const skippedErr = "skipped: run canceled"

// Run executes cells on a bounded worker pool and returns one Result
// per cell, in submission order. Cell failures do not abort the run or
// produce an error here — they are recorded per Result (see
// FirstError). The only error Run returns is the context's, in which
// case cells not yet started carry a "skipped" Result.
func Run(ctx context.Context, cells []Cell, opts Options) ([]Result, error) {
	results := make([]Result, len(cells))
	for i, c := range cells {
		results[i] = Result{Experiment: c.Experiment, Cell: c.Name, Seed: c.Seed, Err: skippedErr}
	}
	if len(cells) == 0 {
		return results, ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	start := time.Now()
	var (
		mu           sync.Mutex
		done, failed int
	)
	report := func(i int) {
		if opts.OnProgress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		if results[i].Err != "" {
			failed++
		}
		elapsed := time.Since(start)
		eta := time.Duration(float64(elapsed) / float64(done) * float64(len(cells)-done))
		opts.OnProgress(Progress{
			Done: done, Total: len(cells), Failed: failed,
			Experiment: cells[i].Experiment, Cell: cells[i].Name,
			Elapsed: elapsed, ETA: eta,
		})
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = runCell(ctx, cells[i], opts.Retries)
				report(i)
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()
	return results, ctx.Err()
}

// runCell executes one cell with panic isolation and retry.
func runCell(ctx context.Context, c Cell, retries int) Result {
	r := Result{Experiment: c.Experiment, Cell: c.Name, Seed: c.Seed}
	start := time.Now()
	for attempt := 0; attempt <= retries; attempt++ {
		r.Attempts = attempt + 1
		v, err, stack := invoke(ctx, c)
		if err == nil {
			r.Value, r.Err, r.Stack = v, "", ""
			break
		}
		r.Value, r.Err, r.Stack = nil, err.Error(), stack
		if ctx.Err() != nil {
			break // don't retry into a canceled run
		}
	}
	r.Wall = time.Since(start)
	return r
}

// invoke runs the cell body once, converting panics into errors.
func invoke(ctx context.Context, c Cell) (v any, err error, stack string) {
	defer func() {
		if rec := recover(); rec != nil {
			v = nil
			err = fmt.Errorf("cell %s/%s panicked: %v", c.Experiment, c.Name, rec)
			stack = string(debug.Stack())
		}
	}()
	v, err = c.Run(ctx, c.Seed)
	return v, err, ""
}

// FirstError returns the first recorded cell failure, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != "" {
			return fmt.Errorf("runner: cell %s/%s (seed %d, %d attempts): %s",
				r.Experiment, r.Cell, r.Seed, r.Attempts, r.Err)
		}
	}
	return nil
}

// Failed counts results whose final attempt errored.
func Failed(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Err != "" {
			n++
		}
	}
	return n
}

// DeriveSeed maps (base, labels...) to a stable 64-bit seed: FNV-1a
// over the base seed and the length-prefixed labels (so distinct label
// lists are distinct byte streams even with arbitrary label contents)
// followed by a splitmix64 finalizer for avalanche. The same inputs
// yield the same seed on every platform and at every worker count;
// distinct labels yield independent streams. The result is never 0,
// which some RNGs treat as a sentinel.
func DeriveSeed(base uint64, labels ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	}
	mix64(base)
	for _, l := range labels {
		mix64(uint64(len(l)))
		for i := 0; i < len(l); i++ {
			mix(l[i])
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return h
}
