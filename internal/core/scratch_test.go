package core

import (
	"encoding/json"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// The pooling contract: a Scratch reused across arbitrarily many
// cascades must be invisible — every outcome byte-identical to what a
// fresh allocation produces. This is what lets the simulators drive
// hundreds of thousands of queries through one Scratch without
// re-validating determinism anywhere else.

// outcomeJSON canonicalizes an outcome for byte comparison.
func outcomeJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScratchReuseByteIdentical runs 1000 varied cascades (mixed
// origins, TTLs, keys, delays, result caps, local indices) through one
// pooled Scratch and through fresh per-query state, asserting each
// pair of outcomes marshals to identical bytes.
func TestScratchReuseByteIdentical(t *testing.T) {
	g, content, s := randomCase(42, 60, 4)
	neighborIndex := IndexFunc(func(at topology.NodeID, key Key) []topology.NodeID {
		var holders []topology.NodeID
		for _, nb := range g.net.Out(at) {
			if content.HasContent(nb, key) {
				holders = append(holders, nb)
			}
		}
		return holders
	})
	// Two delay streams that must stay in lockstep: the pooled and the
	// fresh run each consume identical sample sequences.
	delayA, delayB := rng.New(7), rng.New(7)
	mkCascade := func(st *rng.Stream, withIndex bool) *Cascade {
		c := &Cascade{
			Graph:   g,
			Content: content,
			Forward: Flood{},
			Delay: func(_, _ topology.NodeID) float64 {
				return 0.01 + st.Float64()*0.1
			},
		}
		if withIndex {
			c.Index = neighborIndex
		}
		return c
	}

	pooled := NewScratch(0) // deliberately unsized: growth must be invisible too
	for i := 0; i < 1000; i++ {
		q := Query{
			ID:             QueryID(i + 1),
			Key:            Key(s.Intn(3)),
			Origin:         topology.NodeID(s.Intn(60)),
			TTL:            s.Intn(5) + 1,
			MaxResults:     s.Intn(4), // 0 = unlimited
			ForwardWhenHit: s.Bernoulli(0.5),
		}
		withIndex := s.Bernoulli(0.3)

		qa, qb := q, q
		a := mkCascade(delayA, withIndex).RunScratch(&qa, pooled)
		aj := outcomeJSON(t, a)
		b := mkCascade(delayB, withIndex).RunScratch(&qb, nil)
		if bj := outcomeJSON(t, b); aj != bj {
			t.Fatalf("cascade %d (%+v, index=%v): pooled and fresh outcomes differ\npooled: %s\nfresh:  %s",
				i, q, withIndex, aj, bj)
		}
	}
}

// TestScratchReuseExploreByteIdentical is the exploration analogue.
func TestScratchReuseExploreByteIdentical(t *testing.T) {
	g, content, s := randomCase(43, 50, 4)
	delayA, delayB := rng.New(9), rng.New(9)
	mk := func(st *rng.Stream) *Cascade {
		return &Cascade{
			Graph: g, Content: content, Forward: Flood{},
			Delay: func(_, _ topology.NodeID) float64 { return 0.01 + st.Float64()*0.1 },
		}
	}
	pooled := NewScratch(50)
	for i := 0; i < 300; i++ {
		x := Exploration{
			Keys:   []Key{Key(s.Intn(3)), Key(s.Intn(3))},
			Origin: topology.NodeID(s.Intn(50)),
			TTL:    s.Intn(4) + 1,
		}
		xa, xb := x, x
		a := mk(delayA).ExploreScratch(&xa, pooled)
		aj := outcomeJSON(t, a)
		b := mk(delayB).ExploreScratch(&xb, nil)
		if bj := outcomeJSON(t, b); aj != bj {
			t.Fatalf("exploration %d (%+v): pooled and fresh outcomes differ\npooled: %s\nfresh:  %s",
				i, x, aj, bj)
		}
	}
}

// TestScratchEpochWrap forces the uint32 epoch counter through its
// wraparound and asserts the hard reset keeps outcomes identical to a
// fresh run (a stale slot surviving the wrap would look visited).
func TestScratchEpochWrap(t *testing.T) {
	g, content, _ := randomCase(44, 30, 3)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
	pooled := NewScratch(30)
	q := Query{ID: 1, Key: 1, Origin: 0, TTL: 3}

	q1 := q
	before := outcomeJSON(t, c.RunScratch(&q1, pooled))
	pooled.epoch = ^uint32(0) // next begin() wraps to 0 and hard-resets
	q2 := q
	after := outcomeJSON(t, c.RunScratch(&q2, pooled))
	if before != after {
		t.Fatalf("epoch wrap changed the outcome\nbefore: %s\nafter:  %s", before, after)
	}
	if pooled.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", pooled.epoch)
	}
}

// TestScratchSteadyStateAllocs pins the hot-path claim: once warmed, a
// cascade through a pooled Scratch allocates only the Outcome header.
func TestScratchSteadyStateAllocs(t *testing.T) {
	g, content, _ := randomCase(45, 60, 4)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
	pooled := NewScratch(60)
	// One query reused by address: the cascade never mutates it, and a
	// per-run &Query{} would charge the measurement for the caller's
	// own allocation.
	q := &Query{ID: 1, Key: 1, Origin: 0, TTL: 4, ForwardWhenHit: true}
	for i := 0; i < 10; i++ { // warm the buffers to their high-water marks
		c.RunScratch(q, pooled)
	}
	avg := testing.AllocsPerRun(100, func() {
		c.RunScratch(q, pooled)
	})
	if avg > 1.5 {
		t.Fatalf("steady-state cascade allocates %.1f times/op, want <= 1 (Outcome header)", avg)
	}
}
