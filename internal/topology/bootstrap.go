package topology

// Bootstrap strategies: how nodes obtain their initial neighbors.
//
// Gnutella's join protocol (Section 4: "when a node logs in, it first
// contacts a specialized server and retrieves a number of addresses of
// other nodes that are currently online; the neighborhood list is then
// selected from these nodes") is modeled by RandomAttach over the set
// of currently-online nodes — both the paper's static baseline and the
// dynamic variant start from this purely random wiring.

// IntSource provides uniform integers; satisfied by rng.Stream.Intn.
type IntSource func(n int) int

// RandomAttach connects node id to up to k distinct random candidates
// (respecting capacities and the relation regime). It returns the
// number of edges actually created. candidates must not contain id
// duplicates are tolerated but waste attempts.
func RandomAttach(net *Network, id NodeID, candidates []NodeID, k int, intn IntSource) int {
	if k <= 0 || len(candidates) == 0 {
		return 0
	}
	added := 0
	// Work on a private permutation so retries never loop forever.
	perm := make([]NodeID, len(candidates))
	copy(perm, candidates)
	for i := len(perm) - 1; i > 0; i-- {
		j := intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, c := range perm {
		if added >= k {
			break
		}
		if c == id {
			continue
		}
		if net.Connect(id, c) {
			added++
		}
	}
	return added
}

// RandomWire bootstraps an entire network: every node attaches to k
// random others. Nodes are processed in ID order for determinism. In
// the Symmetric regime the achieved degree can be below k for the last
// nodes processed (their candidates may be full) — exactly the
// situation of a Gnutella node that finds fewer free slots.
func RandomWire(net *Network, k int, intn IntSource) {
	all := make([]NodeID, net.Len())
	for i := range all {
		all[i] = NodeID(i)
	}
	for i := 0; i < net.Len(); i++ {
		id := NodeID(i)
		need := k - net.Node(id).Out.Len()
		if need > 0 {
			RandomAttach(net, id, all, need, intn)
		}
	}
}

// OnlineFilter returns the subset of ids for which online(id) is true.
func OnlineFilter(ids []NodeID, online func(NodeID) bool) []NodeID {
	out := make([]NodeID, 0, len(ids))
	for _, id := range ids {
		if online(id) {
			out = append(out, id)
		}
	}
	return out
}
