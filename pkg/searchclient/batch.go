package searchclient

import (
	"context"
	"fmt"
	"sync"
)

// BatchQueryRequest is the body of POST /v1/query/batch: a slab of
// queries admitted through the lifecycle gate as one unit and drained
// on the daemon's resident batch workers. Admission is batch-atomic —
// either the whole slab is admitted (one gate check, one inflight
// entry) or the whole slab is refused with 503; per-item problems
// (bad key, unknown policy, unhosted origin) never fail the slab, they
// mark that item's result instead.
type BatchQueryRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchItem is one query's outcome inside a batch response. Exactly
// one of the two shapes is populated: a successful item embeds the
// same QueryResponse a single POST /v1/query would have produced;
// a failed item carries the HTTP status code and error message that
// the single-query endpoint would have answered with.
type BatchItem struct {
	QueryResponse
	// Status is the per-item HTTP-equivalent status code when the item
	// failed (400 for a bad key/policy/origin, 503 when every local
	// node was crashed); 0 on success.
	Status int `json:"status,omitempty"`
	// Error is the per-item failure message; empty on success.
	Error string `json:"error,omitempty"`
}

// OK reports whether the item succeeded.
func (it *BatchItem) OK() bool { return it.Status == 0 }

// BatchQueryResponse is the body answering POST /v1/query/batch.
// Results align 1:1 with the request's Queries, in order.
type BatchQueryResponse struct {
	Results       []BatchItem `json:"results"`
	ElapsedMillis float64     `json:"elapsed_ms"`
}

// Hits counts the items that found at least one answer.
func (r *BatchQueryResponse) Hits() int {
	n := 0
	for i := range r.Results {
		if r.Results[i].OK() && r.Results[i].Found() {
			n++
		}
	}
	return n
}

// QueryBatch runs a slab of queries as one POST /v1/query/batch. The
// response's Results align 1:1 with reqs. The whole slab shares the
// client's retry/breaker machinery exactly like a single Query.
func (c *Client) QueryBatch(ctx context.Context, reqs []QueryRequest) (*BatchQueryResponse, error) {
	var resp BatchQueryResponse
	err := c.post(ctx, "/v1/query/batch", BatchQueryRequest{Queries: reqs}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(reqs) {
		return nil, fmt.Errorf("searchclient: batch answered %d results for %d queries",
			len(resp.Results), len(reqs))
	}
	return &resp, nil
}

// QueryBatchPipelined splits a large slab into chunks of chunkSize and
// keeps up to inflight chunk requests on the wire concurrently over
// the client's pooled connections — bounded pipelining, so a slab
// larger than the daemon's max_batch still streams through without
// ever holding more than inflight×chunkSize queries in transit.
// Results are reassembled in request order. chunkSize and inflight
// default to 1024 and 4 when non-positive. The first failing chunk
// aborts the remaining ones and surfaces its error.
func (c *Client) QueryBatchPipelined(ctx context.Context, reqs []QueryRequest,
	chunkSize, inflight int) (*BatchQueryResponse, error) {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	if inflight <= 0 {
		inflight = 4
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := &BatchQueryResponse{Results: make([]BatchItem, len(reqs))}
	ctx, stop := context.WithCancel(ctx)
	defer stop()

	type chunk struct{ lo, hi int }
	chunks := make(chan chunk)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	workers := inflight
	if n := (len(reqs) + chunkSize - 1) / chunkSize; n < workers {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range chunks {
				resp, err := c.QueryBatch(ctx, reqs[ch.lo:ch.hi])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
						stop() // abort the chunks still queued or in flight
					}
					errMu.Unlock()
					continue
				}
				copy(out.Results[ch.lo:ch.hi], resp.Results)
				errMu.Lock()
				out.ElapsedMillis += resp.ElapsedMillis
				errMu.Unlock()
			}
		}()
	}
feed:
	for lo := 0; lo < len(reqs); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(reqs) {
			hi = len(reqs)
		}
		select {
		case chunks <- chunk{lo, hi}:
		case <-ctx.Done():
			break feed
		}
	}
	close(chunks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// BatchStatusError summarizes the per-item failures of a batch, for
// callers that treat any item failure as fatal.
func (r *BatchQueryResponse) BatchStatusError() error {
	for i := range r.Results {
		if !r.Results[i].OK() {
			return &Error{Status: r.Results[i].Status,
				Message: fmt.Sprintf("batch item %d: %s", i, r.Results[i].Error)}
		}
	}
	return nil
}
