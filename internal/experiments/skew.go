package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/pkg/search"
)

// The skew experiment family is the first workload built directly on
// the session driver (internal/driver): a Zipf-exponent × churn-rate ×
// forward-policy grid over one mid-size network, plus a flash-crowd
// cell. Where the scale family isolates the per-query hot path with a
// bare query loop, skew exercises the full session timeline — Poisson
// arrivals per node, stationary-initialized on/off churn masking the
// static overlay, and a non-homogeneous arrival ramp — and shows that
// a new workload is a Spec literal plus an OnQuery hook, not a new
// package.
//
// Axes:
//
//   - Theta: content popularity skew. Providers sample their holdings
//     and clients their requests from the same Zipf, so higher skew
//     concentrates both supply and demand on the popular keys.
//   - Churn: mean on/off session length (0 = stable membership). Edges
//     are wired once; offline nodes neither answer nor forward, so
//     churn thins the effective overlay without rewiring it.
//   - Policy: pkg/search registry name (flood vs bounded fan-out).
//
// The flash-crowd cell ramps every node's arrival rate by FlashPeak
// inside a half-hour window and focuses in-window queries on the
// flashHotKeys most popular keys — demand spiking faster than any
// reconfiguration could follow.
//
// Determinism: each cell's seed derives from the experiment seed and
// the cell name (runner.DeriveSeed), every draw comes from the cell's
// own stream tree, and stochastic policies use the engine's per-query
// derived streams — cells.json is byte-identical at any -workers
// count. Wall-clock measurements go to the BENCH_skew.json side
// channel, never into the comparable artifact.

// SkewConfig parameterizes one skew cell.
type SkewConfig struct {
	// Nodes and Degree shape the symmetric overlay.
	Nodes, Degree int
	// ProviderFraction of the population holds content.
	ProviderFraction float64
	// Keys is the content key space; each provider holds
	// KeysPerProvider keys Zipf(Theta)-sampled from it.
	Keys, KeysPerProvider int
	// Theta is the Zipf exponent shared by holdings and requests.
	Theta float64
	// Policy selects the forward policy by pkg/search registry name.
	Policy string
	// TTL bounds each search.
	TTL int
	// RatePerHour is the per-node query arrival rate.
	RatePerHour float64
	// DurationHours is the simulated period.
	DurationHours float64
	// ChurnMean is the mean on-line and off-line session length in
	// seconds; 0 disables churn (stable membership).
	ChurnMean float64
	// Flash, when non-nil, replaces plain Poisson arrivals with the
	// flash-crowd ramp and focuses in-window queries on the HotKeys
	// most popular keys.
	Flash *FlashSpec
	// Seed determines the entire cell.
	Seed uint64
}

// FlashSpec positions the flash-crowd ramp of one cell.
type FlashSpec struct {
	// Peak multiplies the arrival rate inside the window.
	Peak float64
	// StartHour and DurationHours position the window.
	StartHour, DurationHours float64
	// HotKeys is how many top-popularity keys the in-window queries
	// concentrate on.
	HotKeys int
}

// Validate reports configuration errors.
func (c SkewConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("experiments: skew with %d nodes", c.Nodes)
	case c.Degree < 1:
		return fmt.Errorf("experiments: skew degree %d", c.Degree)
	case c.ProviderFraction <= 0 || c.ProviderFraction > 1:
		return fmt.Errorf("experiments: skew provider fraction %v", c.ProviderFraction)
	case c.Keys < 1 || c.KeysPerProvider < 1:
		return fmt.Errorf("experiments: skew key space %d/%d", c.Keys, c.KeysPerProvider)
	case c.KeysPerProvider > c.Keys:
		// The holdings sampler collects distinct keys; more holdings
		// than keys could never terminate.
		return fmt.Errorf("experiments: skew holdings %d exceed the %d-key space",
			c.KeysPerProvider, c.Keys)
	case c.Theta < 0:
		return fmt.Errorf("experiments: skew theta %v", c.Theta)
	case c.Policy == "":
		return fmt.Errorf("experiments: skew without a policy")
	case c.TTL < 1:
		return fmt.Errorf("experiments: skew TTL %d", c.TTL)
	case c.RatePerHour <= 0:
		return fmt.Errorf("experiments: skew rate %v/h", c.RatePerHour)
	case c.DurationHours <= 0:
		return fmt.Errorf("experiments: skew duration %vh", c.DurationHours)
	case c.ChurnMean < 0:
		return fmt.Errorf("experiments: skew churn mean %v", c.ChurnMean)
	case c.Flash != nil && (c.Flash.HotKeys < 1 || c.Flash.HotKeys > c.Keys):
		// Hot keys index the head of the popularity order; a hot set
		// wider than the key space would query keys nobody can hold.
		return fmt.Errorf("experiments: flash crowd over %d hot keys (key space %d)",
			c.Flash.HotKeys, c.Keys)
	}
	return nil
}

// DefaultSkewConfig returns the grid's shared shape at the given
// network size: the paper's degree-4 overlay, 10% providers, a key
// space that grows with the network, flood at TTL 3.
func DefaultSkewConfig(nodes int, seed uint64) SkewConfig {
	return SkewConfig{
		Nodes:            nodes,
		Degree:           4,
		ProviderFraction: 0.10,
		Keys:             nodes / 2,
		KeysPerProvider:  16,
		Theta:            0.9,
		Policy:           "flood",
		TTL:              3,
		RatePerHour:      skewRatePerHour,
		DurationHours:    skewDurationHours,
		Seed:             seed,
	}
}

// SkewSummary is the deterministic (JSON-stable) output of one skew
// cell — the `value` schema of skew cells in cells.json.
type SkewSummary struct {
	Nodes     int     `json:"nodes"`
	Providers int     `json:"providers"`
	Theta     float64 `json:"theta"`
	ChurnMean float64 `json:"churn_mean_s"`
	Policy    string  `json:"policy"`
	// Queries counts issued searches; Hits the satisfied subset.
	Queries int     `json:"queries"`
	Hits    int     `json:"hits"`
	HitRate float64 `json:"hit_rate"`
	// Messages and ReplyMessages total propagations and reply hops.
	Messages      uint64  `json:"messages"`
	ReplyMessages uint64  `json:"reply_messages"`
	MsgsPerQuery  float64 `json:"msgs_per_query"`
	// VisitedMean is the mean number of distinct repositories that
	// processed each query.
	VisitedMean float64 `json:"visited_mean"`
	// DelayP50Ms/P95Ms/P99Ms are first-result delay percentiles over
	// satisfied queries, in milliseconds.
	DelayP50Ms float64 `json:"delay_p50_ms"`
	DelayP95Ms float64 `json:"delay_p95_ms"`
	DelayP99Ms float64 `json:"delay_p99_ms"`
	// Logins and Logoffs count churn transitions (0 when stable).
	Logins  uint64 `json:"logins"`
	Logoffs uint64 `json:"logoffs"`
	// FlashQueries and FlashHitRate cover the ramp window. Both are
	// always emitted (grid cells carry zeros) so the schema is uniform
	// across cells and a measured zero hit rate stays visible.
	FlashQueries int     `json:"flash_queries"`
	FlashHitRate float64 `json:"flash_hit_rate"`
}

// SkewPerfSample is the wall-clock side channel of one skew cell.
type SkewPerfSample struct {
	// WallSeconds is the session run time (excluding world build).
	WallSeconds float64
	// Events counts messages plus reply hops.
	Events uint64
	// Queries is the number of searches issued.
	Queries int
}

// SkewPerf collects the non-deterministic measurements of a skew run,
// keyed by cell name. It is safe for concurrent cells.
type SkewPerf struct {
	mu      sync.Mutex
	samples map[string]SkewPerfSample
}

// NewSkewPerf returns an empty collector.
func NewSkewPerf() *SkewPerf {
	return &SkewPerf{samples: make(map[string]SkewPerfSample)}
}

func (p *SkewPerf) record(cell string, s SkewPerfSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples[cell] = s
}

// Report renders the collected samples plus the deterministic per-cell
// metrics as a BENCH_skew.json document.
func (p *SkewPerf) Report(rs []runner.Result) (*perf.Report, error) {
	rep := perf.NewReport("skew-experiment")
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range rs {
		if r.Experiment != "skew" {
			continue
		}
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: skew cell %s failed: %s", r.Cell, r.Err)
		}
		sum, ok := r.Value.(*SkewSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: skew cell %s has value %T", r.Cell, r.Value)
		}
		m := map[string]float64{
			"hit-rate":     sum.HitRate,
			"msgs/query":   sum.MsgsPerQuery,
			"delay_p95_ms": sum.DelayP95Ms,
		}
		if s, ok := p.samples[r.Cell]; ok && s.WallSeconds > 0 && s.Queries > 0 {
			m["events/sec"] = float64(s.Events) / s.WallSeconds
			m["queries/sec"] = float64(s.Queries) / s.WallSeconds
			m["wall_seconds"] = s.WallSeconds
		}
		rep.Add("skew/"+r.Cell, m)
	}
	return rep, nil
}

// Grid axes. Policies come from the pkg/search registry; churn levels
// are mean session lengths; thetas span near-uniform to heavy skew.
var (
	skewThetas = []float64{0.5, 0.9, 1.2}
	skewChurns = []struct {
		name string
		mean float64
	}{
		{"stable", 0},
		{"churn3h", 3 * 3600},
		{"churn30m", 30 * 60},
	}
	skewPolicies = []string{"flood", "random-2"}
)

// Workload intensity and flash-crowd shape of the family.
const (
	skewRatePerHour   = 0.5
	skewDurationHours = 4
	flashPeak         = 6.0
	flashWindowHours  = 0.5
	flashHotKeys      = 16
)

// skewNodes returns the grid's network size: 10k at full scale, 1k in
// CI — both far above the paper's 2,000-user evaluation per node
// budget of a figure cell, small enough for a grid.
func skewNodes(s Scale) int {
	if s == Full {
		return 10_000
	}
	return 1_000
}

// SkewCells returns the grid cells (theta × churn × policy, in that
// nesting order) plus the flash-crowd cell, plus the collector that
// receives each cell's wall-clock measurements. Every cell derives its
// own seed from (seed, experiment, cell name), so the family is
// deterministic at any worker count and cells can be re-run in
// isolation.
func SkewCells(experiment string, scale Scale, seed uint64) ([]runner.Cell, *SkewPerf) {
	collector := NewSkewPerf()
	nodes := skewNodes(scale)
	mk := func(name string, cfg SkewConfig) runner.Cell {
		return runner.Cell{
			Experiment: experiment,
			Name:       name,
			Seed:       cfg.Seed,
			Run: func(_ context.Context, cellSeed uint64) (any, error) {
				c := cfg
				c.Seed = cellSeed
				sum, sample, err := RunSkew(c)
				if err != nil {
					return nil, err
				}
				collector.record(name, sample)
				return sum, nil
			},
		}
	}
	var cells []runner.Cell
	for _, theta := range skewThetas {
		for _, churn := range skewChurns {
			for _, policy := range skewPolicies {
				name := fmt.Sprintf("theta%02.0f-%s-%s", theta*10, churn.name, policy)
				cfg := DefaultSkewConfig(nodes, runner.DeriveSeed(seed, experiment, name))
				cfg.Theta = theta
				cfg.ChurnMean = churn.mean
				cfg.Policy = policy
				cells = append(cells, mk(name, cfg))
			}
		}
	}
	flash := DefaultSkewConfig(nodes, runner.DeriveSeed(seed, experiment, "flash"))
	flash.Flash = &FlashSpec{
		Peak:          flashPeak,
		StartHour:     skewDurationHours / 2,
		DurationHours: flashWindowHours,
		HotKeys:       flashHotKeys,
	}
	cells = append(cells, mk("flash", flash))
	return cells, collector
}

// skewWorld is one cell's domain state over the session driver.
type skewWorld struct {
	cfg   SkewConfig
	sess  *driver.Session
	zipf  *rng.Zipf
	holds []map[core.Key]struct{}
	arr   driver.FlashCrowd // flash cell only (cfg.Flash != nil)

	sum        SkewSummary
	delays     []float64
	visitedSum int
	flashHits  int
}

// RunSkew executes one skew cell: generate the world (roles, holdings,
// classes), hand the timeline to a driver session, drive it to the
// horizon, summarize. The summary is a pure function of the config;
// the sample carries the wall-clock side measurements.
func RunSkew(cfg SkewConfig) (*SkewSummary, SkewPerfSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, SkewPerfSample{}, err
	}
	root := rng.New(cfg.Seed)
	roleStream := root.Split()
	holdStream := root.Split()
	classes := netsim.AssignClasses(root.Split().Intn, cfg.Nodes)

	n := cfg.Nodes
	providers := int(float64(n) * cfg.ProviderFraction)
	if providers < 1 {
		providers = 1
	}
	w := &skewWorld{
		cfg:   cfg,
		zipf:  rng.NewZipf(cfg.Keys, cfg.Theta),
		holds: make([]map[core.Key]struct{}, n),
	}
	perm := roleStream.Perm(n)
	for i := 0; i < providers; i++ {
		h := make(map[core.Key]struct{}, cfg.KeysPerProvider)
		for len(h) < cfg.KeysPerProvider {
			h[core.Key(w.zipf.Index(holdStream))] = struct{}{}
		}
		w.holds[perm[i]] = h
	}
	w.sum = SkewSummary{
		Nodes:     n,
		Providers: providers,
		Theta:     cfg.Theta,
		ChurnMean: cfg.ChurnMean,
		Policy:    cfg.Policy,
	}

	var arrivals driver.Arrivals = driver.Poisson{RatePerHour: cfg.RatePerHour}
	if f := cfg.Flash; f != nil {
		w.arr = driver.FlashCrowd{
			BaseRatePerHour: cfg.RatePerHour,
			Peak:            f.Peak,
			StartHour:       f.StartHour,
			DurationHours:   f.DurationHours,
		}
		arrivals = w.arr
	}
	var churn *workload.ChurnConfig
	if cfg.ChurnMean > 0 {
		churn = &workload.ChurnConfig{MeanOnline: cfg.ChurnMean, MeanOffline: cfg.ChurnMean}
	}
	sess, err := driver.New(driver.Spec{
		Nodes:    n,
		Relation: topology.Symmetric,
		OutCap:   cfg.Degree,
		InCap:    cfg.Degree,
		Duration: cfg.DurationHours * 3600,
		// Bounded random probing, not topology.RandomWire: the grid's
		// full-scale cells have 10k nodes (see scaleWire).
		Place: func(s *driver.Session) {
			scaleWire(s.Network(), cfg.Degree, s.TopoStream())
		},
		Arrivals: arrivals,
		Churn:    churn,
		Content: core.ContentFunc(func(id topology.NodeID, key core.Key) bool {
			_, ok := w.holds[id][key]
			return ok
		}),
		Classes: func(id topology.NodeID) netsim.BandwidthClass { return classes[id] },
		Policy:  cfg.Policy,
		TTL:     cfg.TTL,
		Seed:    cfg.Seed,
		OnQuery: w.onQuery,
	}, root)
	if err != nil {
		return nil, SkewPerfSample{}, err
	}
	w.sess = sess

	start := time.Now()
	sess.Run()
	wall := time.Since(start)

	w.finish()
	sample := SkewPerfSample{
		WallSeconds: wall.Seconds(),
		Events:      w.sum.Messages + w.sum.ReplyMessages,
		Queries:     w.sum.Queries,
	}
	return &w.sum, sample, nil
}

// onQuery handles one arrival: sample a key (the hot set inside the
// flash window, the cell's Zipf otherwise), search, tally.
func (w *skewWorld) onQuery(id topology.NodeID, now float64) {
	st := w.sess.QueryStream(id)
	inFlash := w.cfg.Flash != nil && w.arr.InWindow(now)
	var key core.Key
	if inFlash {
		key = core.Key(st.Intn(w.cfg.Flash.HotKeys))
	} else {
		key = core.Key(w.zipf.Index(st))
	}
	w.sum.Queries++
	if inFlash {
		w.sum.FlashQueries++
	}
	out := w.sess.Do(search.Query{
		ID:     w.sess.NextQueryID(),
		Key:    key,
		Origin: id,
	})
	w.sum.Messages += out.Messages
	w.sum.ReplyMessages += out.ReplyMessages
	w.visitedSum += out.Visited
	if out.Found() {
		w.sum.Hits++
		w.delays = append(w.delays, out.FirstResultDelay)
		if inFlash {
			w.flashHits++
		}
	}
}

// finish folds the tallies into rates and percentiles.
func (w *skewWorld) finish() {
	s := &w.sum
	s.Logins = w.sess.Logins()
	s.Logoffs = w.sess.Logoffs()
	if s.Queries > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Queries)
		s.MsgsPerQuery = float64(s.Messages) / float64(s.Queries)
		s.VisitedMean = float64(w.visitedSum) / float64(s.Queries)
	}
	if s.FlashQueries > 0 {
		s.FlashHitRate = float64(w.flashHits) / float64(s.FlashQueries)
	}
	sort.Float64s(w.delays)
	s.DelayP50Ms = quantileMs(w.delays, 0.50)
	s.DelayP95Ms = quantileMs(w.delays, 0.95)
	s.DelayP99Ms = quantileMs(w.delays, 0.99)
}

// AssembleSkew validates the results of SkewCells into summaries, in
// grid order.
func AssembleSkew(rs []runner.Result) ([]*SkewSummary, error) {
	out := make([]*SkewSummary, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", r.Experiment, r.Cell, r.Err)
		}
		sum, ok := r.Value.(*SkewSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *SkewSummary",
				r.Experiment, r.Cell, r.Value)
		}
		out[i] = sum
	}
	return out, nil
}

// SkewTable renders the grid plus the flash cell.
func SkewTable(rs []runner.Result, sums []*SkewSummary) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Skew grid: Zipf × churn × policy over one %d-node session", sums[0].Nodes),
		"cell", "theta", "policy", "queries", "hit_rate", "msgs/query", "p50_ms", "p95_ms")
	for i, s := range sums {
		t.AddRow(rs[i].Cell, s.Theta, s.Policy, s.Queries, s.HitRate, s.MsgsPerQuery,
			s.DelayP50Ms, s.DelayP95Ms)
	}
	return t
}

// Skew runs the grid on the default pool and returns the summaries.
func Skew(scale Scale, seed uint64) []*SkewSummary {
	cells, _ := SkewCells("skew", scale, seed)
	return must(AssembleSkew(runLocal(cells)))
}
