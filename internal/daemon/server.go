// Package daemon is the long-running cluster service behind
// cmd/dsearchd: one process hosts a shard of live nodes, discovers the
// other shards by gossip, and serves an HTTP/JSON query+control plane
// whose wire contract lives in pkg/searchclient.
//
// The deployment model is deliberately two-headed. In chan-transport
// mode one process hosts the entire cluster over the in-process
// channel fabric — the CI-scale configuration, and the subject of the
// live-vs-simulated parity harness. In tcp-transport mode each process
// hosts a contiguous shard [BaseID, BaseID+Nodes) of the cluster's
// node ID space, every local node gets its own loopback gob/TCP
// listener, and gossip distributes listener addresses so shards find
// each other without any central registry.
package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/pkg/search"
	"repro/pkg/searchclient"
)

// State is the daemon lifecycle state machine. Transitions are
// monotone except Ready↔Paused: Starting → Ready ⇄ Paused → Draining →
// Stopped.
type State int32

// Lifecycle states.
const (
	StateStarting State = iota
	StateReady
	StatePaused
	StateDraining
	StateStopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StatePaused:
		return "paused"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Server is one dsearchd process: a shard of live nodes, the gossip
// membership state, and the HTTP plane that fronts both.
type Server struct {
	cfg   Config
	world *World
	g     *Gossip

	reg       *metrics.Registry
	nodeStats *live.NodeStats

	nodes []*live.Node
	chanT *live.ChanTransport
	tcpT  *live.TCPTransport
	// faultT wraps whichever transport the nodes send through: the
	// deterministic fault-injection plane plus crash/partition
	// enforcement. Always present (zero rates make it a pass-through).
	faultT *faults.Transport
	// crashed[i] marks local node i fault-injected down: its transport
	// traffic is blocked, TCP deliveries are discarded, and admission
	// routes around it.
	crashed []atomic.Bool
	// stopListeners closes the per-node envelope listeners (TCP mode).
	stopListeners []func()

	httpLn  net.Listener
	httpSrv *http.Server

	// state guards admission together with gateMu: a query handler
	// takes gateMu.RLock, checks state==Ready, joins inflight and
	// releases; Drain takes gateMu.Lock to flip the state so no new
	// query can slip in after the flip, then waits out inflight.
	state    atomic.Int32
	gateMu   sync.RWMutex
	inflight sync.WaitGroup

	// nextOrigin round-robins unpinned queries over the local shard.
	nextOrigin atomic.Uint64
	// policySeq salts per-request stochastic policy streams.
	policySeq atomic.Uint64

	gossipStop chan struct{}
	gossipDone chan struct{}
	peerHC     *http.Client

	qTotal, qHit, qRejected, qDegraded *metrics.Counter
	gossipRounds                       *metrics.Counter

	startOnce sync.Once
	drainOnce sync.Once
	drainErr  error
}

// New builds a server: world derivation, node construction, and every
// listener bind (HTTP and, in TCP mode, one envelope listener per
// local node) happen here, so Addr is valid — and the process's
// gossip entry complete — before Start launches anything.
func New(cfg Config) (*Server, error) {
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	class, err := classFor(cfg.Class)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:        cfg,
		world:      BuildWorld(cfg.Seed, cfg.Total, cfg.Degree, cfg.Keys, cfg.Replicas),
		reg:        metrics.NewRegistry(),
		nodeStats:  &live.NodeStats{},
		gossipStop: make(chan struct{}),
		gossipDone: make(chan struct{}),
		peerHC:     &http.Client{Timeout: 2 * time.Second},
	}
	s.qTotal = s.reg.Counter("daemon_queries_total")
	s.qHit = s.reg.Counter("daemon_queries_hit_total")
	s.qRejected = s.reg.Counter("daemon_queries_rejected_total")
	s.qDegraded = s.reg.Counter("daemon_queries_degraded_total")
	s.gossipRounds = s.reg.Counter("daemon_gossip_rounds_total")
	s.state.Store(int32(StateStarting))

	var inner live.Transport
	switch cfg.Transport {
	case TransportChan:
		s.chanT = live.NewChanTransport()
		inner = s.chanT
	case TransportTCP:
		s.tcpT = live.NewTCPTransport()
		inner = s.tcpT
	}
	// Every node sends through the fault plane, even with zero rates:
	// crash and partition control must work on a healthy configuration.
	s.faultT = faults.Wrap(inner, faults.Config{
		Seed:     cfg.Faults.Seed,
		Drop:     cfg.Faults.Drop,
		Dup:      cfg.Faults.Dup,
		Reorder:  cfg.Faults.Reorder,
		DelayMin: time.Duration(cfg.Faults.DelayMinMillis) * time.Millisecond,
		DelayMax: time.Duration(cfg.Faults.DelayMaxMillis) * time.Millisecond,
	})
	transport := live.Transport(s.faultT)
	s.crashed = make([]atomic.Bool, cfg.Nodes)

	// Per-node forward policies: one instance each, because stochastic
	// families carry an rng stream that must not be shared across
	// actors, and the stream layout must not disturb the World's.
	policyRoot := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	s.nodes = make([]*live.Node, cfg.Nodes)
	for i := range s.nodes {
		id := topology.NodeID(cfg.BaseID + i)
		pol, err := search.PolicyByName(cfg.Policy, search.PolicyEnv{Intn: policyRoot.Split().Intn})
		if err != nil {
			return nil, fmt.Errorf("daemon: policy %q: %w", cfg.Policy, err)
		}
		s.nodes[i] = live.NewNode(live.Config{
			ID:        id,
			Neighbors: s.world.MaxDegree,
			TTL:       cfg.TTL,
			Transport: transport,
			Store:     s.world.StoreFor(id),
			Class:     class,
			Forward:   pol,
			Stats:     s.nodeStats,
		})
	}

	if s.chanT != nil {
		for _, n := range s.nodes {
			s.chanT.Attach(n)
		}
	}

	// Bind everything before gossip can mention us.
	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		return nil, fmt.Errorf("daemon: bind http %s: %w", cfg.HTTPAddr, err)
	}
	s.httpLn = ln

	var nodeAddrs []string
	if s.tcpT != nil {
		nodeAddrs = make([]string, len(s.nodes))
		for i, n := range s.nodes {
			// The deliver gate enforces crashes on the receive side too:
			// remote processes do not share this process's fault plane, so
			// their envelopes to a crashed local node die at the listener.
			node, idx := n, i
			deliver := func(env live.Envelope) {
				if s.crashed[idx].Load() {
					return
				}
				node.Deliver(env)
			}
			addr, stop, err := live.Listen(cfg.NodeHost+":0", deliver)
			if err != nil {
				s.closeListeners()
				return nil, fmt.Errorf("daemon: bind node %d listener: %w", n.ID(), err)
			}
			nodeAddrs[i] = addr
			s.stopListeners = append(s.stopListeners, stop)
			s.tcpT.SetAddr(n.ID(), addr)
		}
	}

	s.g = NewGossip(Member{
		Name:      cfg.Name,
		HTTP:      ln.Addr().String(),
		BaseID:    cfg.BaseID,
		Nodes:     cfg.Nodes,
		NodeAddrs: nodeAddrs,
	})
	s.g.SetDetection(Detection{
		SuspectAfter: uint64(cfg.FDSuspectRounds),
		EvictAfter:   uint64(cfg.FDEvictRounds),
		Amnesty:      uint64(cfg.FDAmnestyRounds),
	})

	s.httpSrv = &http.Server{Handler: s.mux(), ReadHeaderTimeout: 5 * time.Second}
	return s, nil
}

// Addr returns the bound HTTP address (valid from New on, so callers
// using ":0" learn the ephemeral port).
func (s *Server) Addr() string { return s.httpLn.Addr().String() }

// State returns the current lifecycle state.
func (s *Server) State() State { return State(s.state.Load()) }

// Stats exposes the daemon's counter registry (tests and cmd wiring).
func (s *Server) Stats() *metrics.Registry { return s.reg }

// Start launches the node actors, wires the local shard's overlay
// edges, starts HTTP serving and the gossip loop, and flips the state
// to Ready. It returns once the daemon is serving; errors out of the
// HTTP accept loop after that surface via Drain.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		for _, n := range s.nodes {
			n.Start()
		}
		// Wiring goes through each node's actor loop, so it must follow
		// Start. Each node adds its own view of every incident world
		// edge; remote endpoints learn nothing here (the live protocol
		// carries no wiring messages — the shared World already told
		// every process the same graph).
		for _, n := range s.nodes {
			for _, nb := range s.world.Net.Out(n.ID()) {
				n.AddNeighbor(nb)
			}
		}
		go func() { _ = s.httpSrv.Serve(s.httpLn) }()
		go s.gossipLoop()
		s.state.Store(int32(StateReady))
	})
}

// Drain is the graceful shutdown: stop admitting queries, wait out the
// admitted ones (bounded by ctx and the configured drain timeout),
// stop HTTP and gossip, drain and close every node, then the
// transport. It is idempotent; cmd/dsearchd calls it on SIGTERM.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { s.drainErr = s.drain(ctx) })
	return s.drainErr
}

func (s *Server) drain(ctx context.Context) error {
	// Flip under the write lock: after this, no admission check can
	// observe Ready, so inflight can only shrink.
	s.gateMu.Lock()
	s.state.Store(int32(StateDraining))
	s.gateMu.Unlock()

	ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout())
	defer cancel()

	var err error
	if !waitCtx(ctx, &s.inflight) {
		err = errors.New("daemon: drain timed out with queries in flight")
	}

	close(s.gossipStop)
	<-s.gossipDone
	if shutErr := s.httpSrv.Shutdown(ctx); shutErr != nil && err == nil {
		err = fmt.Errorf("daemon: http shutdown: %w", shutErr)
	}
	// Nodes drain their inboxes (queued envelopes are processed, late
	// hits still count) before the listeners and transport go away.
	for _, n := range s.nodes {
		n.Close()
	}
	s.closeListeners()
	if s.tcpT != nil {
		s.tcpT.Close()
	}
	s.state.Store(int32(StateStopped))
	return err
}

func (s *Server) closeListeners() {
	for _, stop := range s.stopListeners {
		stop()
	}
	s.stopListeners = nil
}

// waitCtx waits on wg until done or ctx expires; true means done.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) bool {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// admit joins the inflight group when the daemon is Ready. The
// returned release must be called exactly once.
func (s *Server) admit() (release func(), ok bool) {
	s.gateMu.RLock()
	defer s.gateMu.RUnlock()
	if State(s.state.Load()) != StateReady {
		return nil, false
	}
	s.inflight.Add(1)
	return func() { s.inflight.Done() }, true
}

// localNode maps a cluster node ID to the local shard, nil if remote.
func (s *Server) localNode(id int) *live.Node {
	i := id - s.cfg.BaseID
	if i < 0 || i >= len(s.nodes) {
		return nil
	}
	return s.nodes[i]
}

// nodeCrashed reports whether local node id is fault-injected down.
func (s *Server) nodeCrashed(id int) bool {
	i := id - s.cfg.BaseID
	return i >= 0 && i < len(s.crashed) && s.crashed[i].Load()
}

// anyCrashed reports whether any local node is currently down.
func (s *Server) anyCrashed() bool {
	for i := range s.crashed {
		if s.crashed[i].Load() {
			return true
		}
	}
	return false
}

// pickLive round-robins over the local shard, skipping crashed nodes;
// nil when every local node is down.
func (s *Server) pickLive() *live.Node {
	for range s.nodes {
		n := s.nodes[s.nextOrigin.Add(1)%uint64(len(s.nodes))]
		if !s.nodeCrashed(int(n.ID())) {
			return n
		}
	}
	return nil
}

// CrashNode fault-injects a locally hosted node down: its transport
// traffic is blocked both ways, TCP deliveries are discarded, and
// query admission routes around it until RestartNode. The node's
// actor keeps running — a crash here is a network death, which is all
// the protocol can observe anyway.
func (s *Server) CrashNode(id int) error {
	i := id - s.cfg.BaseID
	if i < 0 || i >= len(s.nodes) {
		return fmt.Errorf("daemon: node %d not hosted here (shard [%d,%d))",
			id, s.cfg.BaseID, s.cfg.BaseID+s.cfg.Nodes)
	}
	s.crashed[i].Store(true)
	s.faultT.Crash(topology.NodeID(id))
	return nil
}

// RestartNode lifts a CrashNode.
func (s *Server) RestartNode(id int) error {
	i := id - s.cfg.BaseID
	if i < 0 || i >= len(s.nodes) {
		return fmt.Errorf("daemon: node %d not hosted here (shard [%d,%d))",
			id, s.cfg.BaseID, s.cfg.BaseID+s.cfg.Nodes)
	}
	s.crashed[i].Store(false)
	s.faultT.Restart(topology.NodeID(id))
	return nil
}

// Crash, Restart, Partition and Heal make *Server a faults.Target, so
// a faults.Schedule can play directly against an in-process cluster.
func (s *Server) Crash(node int) error   { return s.CrashNode(node) }
func (s *Server) Restart(node int) error { return s.RestartNode(node) }

// Partition splits this process's transport into isolated groups
// (node IDs); traffic across groups is blocked until Heal. In TCP
// mode the cut applies to this process's outbound plane only.
func (s *Server) Partition(groups [][]int) error {
	conv := make([][]topology.NodeID, len(groups))
	for i, g := range groups {
		conv[i] = make([]topology.NodeID, len(g))
		for j, id := range g {
			conv[i][j] = topology.NodeID(id)
		}
	}
	s.faultT.Partition(conv)
	return nil
}

// Heal lifts a Partition.
func (s *Server) Heal() error {
	s.faultT.Heal()
	return nil
}

// FaultStats exposes the fault plane's counters.
func (s *Server) FaultStats() *faults.Stats { return s.faultT.Stats() }

// mux builds the HTTP plane. Every endpoint is wrapped in a latency
// histogram (surfaced in /v1/stats as <name>_{count,p50_us,p95_us,
// p99_us}); untouched endpoints stay out of the snapshot.
func (s *Server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/query", s.timed("http_query", s.handleQuery))
	m.HandleFunc("POST /v1/query/batch", s.timed("http_query_batch", s.handleQueryBatch))
	m.HandleFunc("GET /v1/cluster", s.timed("http_cluster", s.handleCluster))
	m.HandleFunc("GET /v1/stats", s.timed("http_stats", s.handleStats))
	m.HandleFunc("POST /v1/control/pause", s.timed("http_control_pause", s.handlePause))
	m.HandleFunc("POST /v1/control/resume", s.timed("http_control_resume", s.handleResume))
	m.HandleFunc("POST /v1/control/reconfig", s.timed("http_control_reconfig", s.handleReconfig))
	m.HandleFunc("POST /v1/control/crash", s.timed("http_control_crash", s.handleCrash))
	m.HandleFunc("POST /v1/control/restart", s.timed("http_control_restart", s.handleRestart))
	m.HandleFunc("POST /v1/gossip", s.timed("http_gossip", s.handleGossip))
	m.HandleFunc("GET /v1/healthz", s.timed("http_healthz", s.handleHealthz))
	m.HandleFunc("GET /v1/readyz", s.timed("http_readyz", s.handleReadyz))
	return m
}

// timed wraps a handler with a per-endpoint latency histogram. The
// histogram pointer is resolved once at mux-build time, so the hot
// path costs one clock read and one atomic add.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Latency(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

// noRelease is the admission stand-in for queries already covered by a
// batch-level gate entry.
func noRelease() (func(), bool) { return func() {}, true }

// runQuery executes one query end to end — validation, origin
// selection with crashed-node reroute, per-request policy, deadline
// clamping, admission and the live search — and returns either the
// response or the HTTP status and message the caller should answer
// with (code 0 means success). Both the single and the batch endpoint
// funnel through here, so the two planes cannot drift semantically.
func (s *Server) runQuery(ctx context.Context, req *searchclient.QueryRequest,
	admit func() (func(), bool)) (searchclient.QueryResponse, int, string) {
	var zero searchclient.QueryResponse
	if req.Key >= uint64(s.cfg.Keys) {
		return zero, http.StatusBadRequest,
			fmt.Sprintf("key %d outside catalog [0,%d)", req.Key, s.cfg.Keys)
	}

	// Origin selection routes around crashed nodes: a pinned-but-down
	// origin degrades to a live substitute (the response says so), an
	// unpinned query round-robins over live nodes only, and a fully
	// crashed shard is a 503 the client may retry elsewhere.
	var reasons []string
	var node *live.Node
	if req.Origin != nil {
		if node = s.localNode(*req.Origin); node == nil {
			return zero, http.StatusBadRequest,
				fmt.Sprintf("origin %d not hosted here (shard [%d,%d))",
					*req.Origin, s.cfg.BaseID, s.cfg.BaseID+s.cfg.Nodes)
		}
		if s.nodeCrashed(*req.Origin) {
			if node = s.pickLive(); node == nil {
				s.qRejected.Inc()
				return zero, http.StatusServiceUnavailable, "every local node is crashed"
			}
			reasons = append(reasons, searchclient.ReasonOriginCrashed)
		}
	} else {
		if node = s.pickLive(); node == nil {
			s.qRejected.Inc()
			return zero, http.StatusServiceUnavailable, "every local node is crashed"
		}
	}

	// A per-request policy applies at the origin hop only: forwarding
	// nodes are autonomous in the live protocol, so the override
	// shapes the initial fan-out while the cluster keeps its
	// configured behavior downstream.
	var forward core.ForwardPolicy
	if req.Policy != "" {
		seq := s.policySeq.Add(1)
		pol, err := search.PolicyByName(req.Policy,
			search.PolicyEnv{Intn: rng.New(s.cfg.Seed ^ seq).Intn})
		if err != nil {
			return zero, http.StatusBadRequest, "policy: " + err.Error()
		}
		forward = pol
	}

	timeout := s.cfg.QueryWindow()
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}

	// The deadline is a hard budget for the whole request: the
	// collection window is clamped under it, and a Cancel channel cuts
	// the query off mid-collection if it is exhausted anyway — the
	// client gets whatever arrived, flagged Degraded, instead of a
	// timeout error with nothing.
	cancel := ctx.Done()
	clamped := false
	if req.DeadlineMillis > 0 {
		budget := time.Duration(req.DeadlineMillis) * time.Millisecond
		if timeout > budget {
			timeout = budget
			clamped = true // the budget already cut collection short
		}
		dctx, stop := context.WithTimeout(ctx, budget)
		defer stop()
		cancel = dctx.Done()
	}

	release, ok := admit()
	if !ok {
		s.qRejected.Inc()
		return zero, http.StatusServiceUnavailable,
			"not admitting queries (state " + s.State().String() + ")"
	}
	defer release()

	start := time.Now()
	hits, info := node.QueryInfo(live.QueryOpts{
		Key:     core.Key(req.Key),
		TTL:     req.TTL,
		Timeout: timeout,
		MaxHits: req.MaxHits,
		Forward: forward,
		Cancel:  cancel,
	})
	s.qTotal.Inc()
	if len(hits) > 0 {
		s.qHit.Inc()
	}

	// Degradation verdict: anything that may have cost the response
	// completeness is declared, so a caller can always distinguish "no
	// replica holds this key" from "the cluster could not look
	// everywhere".
	if info.Stopped || clamped {
		reasons = append(reasons, searchclient.ReasonDeadline)
	}
	if info.Fanout == 0 && len(hits) == 0 {
		reasons = append(reasons, searchclient.ReasonNoFanout)
	}
	if len(s.g.Suspects()) > 0 {
		reasons = append(reasons, searchclient.ReasonSuspects)
	}
	if s.anyCrashed() {
		reasons = append(reasons, searchclient.ReasonCrashedNodes)
	}
	if len(reasons) > 0 {
		s.qDegraded.Inc()
	}

	resp := searchclient.QueryResponse{
		Origin:          int(node.ID()),
		Hits:            make([]searchclient.Hit, len(hits)),
		ElapsedMillis:   float64(time.Since(start).Microseconds()) / 1000,
		Degraded:        len(reasons) > 0,
		DegradedReasons: reasons,
	}
	for i, h := range hits {
		resp.Hits[i] = searchclient.Hit{
			Holder: int(h.Holder), Hops: h.Hops, Class: h.Class.String(),
		}
	}
	return resp, 0, ""
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req searchclient.QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad query body: "+err.Error())
		return
	}
	resp, code, msg := s.runQuery(r.Context(), &req, s.admit)
	if code != 0 {
		if code == http.StatusServiceUnavailable {
			writeUnavailable(w, msg)
		} else {
			writeErr(w, code, msg)
		}
		return
	}
	writeJSONFast(w, http.StatusOK, &resp)
}

// handleQueryBatch admits a slab of queries through the lifecycle gate
// as one unit and drains it on the configured number of resident
// workers, each running the exact single-query path (runQuery).
// Admission is batch-atomic: one gate check and one inflight entry
// cover the slab, so Drain waits for a started batch to finish and a
// paused daemon refuses the whole slab with 503. Malformed bodies,
// empty slabs and slabs over max_batch are whole-batch 400s; per-item
// problems (bad key, unknown policy, unhosted origin, all-crashed
// shard) mark only that item's result.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req searchclient.BatchQueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds max_batch %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}

	release, ok := s.admit()
	if !ok {
		s.qRejected.Add(uint64(len(req.Queries)))
		writeUnavailable(w, "not admitting queries (state "+s.State().String()+")")
		return
	}
	defer release()

	start := time.Now()
	results := make([]searchclient.BatchItem, len(req.Queries))
	workers := s.cfg.BatchWorkers
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}
	// Resident workers drain a shared index: misses pay the full
	// collection window, so the worker count is how many such windows
	// overlap instead of serializing.
	var next atomic.Uint64
	var wg sync.WaitGroup
	ctx := r.Context()
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Queries) {
					return
				}
				resp, code, msg := s.runQuery(ctx, &req.Queries[i], noRelease)
				if code != 0 {
					results[i].Status, results[i].Error = code, msg
					continue
				}
				results[i].QueryResponse = resp
			}
		}()
	}
	wg.Wait()
	writeJSONFast(w, http.StatusOK, &searchclient.BatchQueryResponse{
		Results:       results,
		ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleCrash and handleRestart are the fault-injection control plane:
// POST {"node": N} marks a locally hosted node network-dead (crash) or
// lifts it (restart). Remote node IDs are the caller's routing error.
func (s *Server) handleCrash(w http.ResponseWriter, r *http.Request) {
	s.handleNodeFault(w, r, s.CrashNode, "crashed")
}

func (s *Server) handleRestart(w http.ResponseWriter, r *http.Request) {
	s.handleNodeFault(w, r, s.RestartNode, "restarted")
}

func (s *Server) handleNodeFault(w http.ResponseWriter, r *http.Request,
	apply func(int) error, verb string) {
	var req struct {
		Node int `json:"node"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: "+err.Error())
		return
	}
	if err := apply(req.Node); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": req.Node, "state": verb})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	info := searchclient.ClusterInfo{
		Self:     s.cfg.Name,
		Epoch:    s.g.Version(),
		State:    s.State().String(),
		Suspects: s.g.Suspects(),
	}
	statuses := s.g.Statuses()
	for _, m := range s.g.Members() {
		info.Members = append(info.Members, searchclient.MemberInfo{
			Name: m.Name, HTTP: m.HTTP, BaseID: m.BaseID, Nodes: m.Nodes,
			Status: string(statuses[m.Name]),
		})
	}
	for _, n := range s.nodes {
		info.LocalNodes = append(info.LocalNodes, searchclient.NodeInfo{
			ID: int(n.ID()), Degree: len(n.Neighbors()),
			Crashed: s.nodeCrashed(int(n.ID())),
		})
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	snap["node_queries_seen"] = s.nodeStats.QueriesSeen.Load()
	snap["node_queries_forwarded"] = s.nodeStats.QueriesForwarded.Load()
	snap["node_hits_served"] = s.nodeStats.HitsServed.Load()
	snap["node_hits_received"] = s.nodeStats.HitsReceived.Load()
	snap["node_inbox_dropped"] = s.nodeStats.InboxDropped.Load()
	snap["node_send_failed"] = s.nodeStats.SendFailed.Load()
	for k, v := range s.faultT.Stats().Snapshot() {
		snap[k] = v
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	if !s.state.CompareAndSwap(int32(StateReady), int32(StatePaused)) {
		writeErr(w, http.StatusConflict, "not ready (state "+s.State().String()+")")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": s.State().String()})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if !s.state.CompareAndSwap(int32(StatePaused), int32(StateReady)) {
		writeErr(w, http.StatusConflict, "not paused (state "+s.State().String()+")")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": s.State().String()})
}

func (s *Server) handleReconfig(w http.ResponseWriter, r *http.Request) {
	for _, n := range s.nodes {
		n.Reconfigure()
	}
	writeJSON(w, http.StatusOK, map[string]int{"reconfigured": len(s.nodes)})
}

// handleGossip is the receiving half of push-pull anti-entropy: merge
// the caller's view, answer with ours.
func (s *Server) handleGossip(w http.ResponseWriter, r *http.Request) {
	var remote View
	if err := json.NewDecoder(r.Body).Decode(&remote); err != nil {
		writeErr(w, http.StatusBadRequest, "bad view: "+err.Error())
		return
	}
	local := s.g.Exchange(remote)
	s.syncTransport()
	writeJSON(w, http.StatusOK, local)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"state": s.State().String()})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.State()
	code := http.StatusOK
	if st != StateReady {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"state": st.String()})
}

// gossipLoop beats and exchanges views with the seed list plus a
// random fanout of known peers every interval, then refreshes the
// transport's address book from whatever it learned.
func (s *Server) gossipLoop() {
	defer close(s.gossipDone)
	// Per-process stream: same cluster seed, different member names →
	// different peer-sampling sequences.
	h := fnv.New64a()
	h.Write([]byte(s.cfg.Name))
	stream := rng.New(s.cfg.Seed ^ h.Sum64())

	tick := time.NewTicker(s.cfg.GossipInterval())
	defer tick.Stop()
	for {
		s.gossipRound(stream)
		select {
		case <-s.gossipStop:
			return
		case <-tick.C:
		}
	}
}

func (s *Server) gossipRound(stream *rng.Stream) {
	s.g.Beat()
	self := s.g.Self()

	targets := make(map[string]struct{})
	for _, seed := range s.cfg.Join {
		targets[seed] = struct{}{}
	}
	for _, m := range s.g.Targets(s.cfg.GossipFanout, stream.Intn) {
		targets[m.HTTP] = struct{}{}
	}
	delete(targets, self.HTTP)

	view := s.g.Snapshot()
	body, err := json.Marshal(view)
	if err != nil {
		return
	}
	for addr := range targets {
		resp, err := s.peerHC.Post(peerURL(addr)+"/v1/gossip",
			"application/json", bytes.NewReader(body))
		if err != nil {
			continue // unreachable peers are retried next round
		}
		var remote View
		err = json.NewDecoder(resp.Body).Decode(&remote)
		resp.Body.Close()
		if err == nil {
			s.g.Absorb(remote)
		}
	}
	s.gossipRounds.Inc()
	// One detector round per gossip round: members whose heartbeats
	// stalled for the configured round counts get suspected, then
	// evicted (with a rejoin tombstone).
	s.g.Tick()
	s.syncTransport()
}

// syncTransport replays the gossip view's node listener addresses into
// the TCP transport (SetAddr is idempotent for unchanged entries).
func (s *Server) syncTransport() {
	if s.tcpT == nil {
		return
	}
	for _, m := range s.g.Members() {
		for i, addr := range m.NodeAddrs {
			s.tcpT.SetAddr(topology.NodeID(m.BaseID+i), addr)
		}
	}
}

func peerURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// classFor maps a config string to a bandwidth class.
func classFor(name string) (netsim.BandwidthClass, error) {
	switch strings.ToLower(name) {
	case "56k", "modem":
		return netsim.Modem56K, nil
	case "cable":
		return netsim.Cable, nil
	case "lan":
		return netsim.LAN, nil
	default:
		return 0, fmt.Errorf("daemon: unknown bandwidth class %q", name)
	}
}

// bufPool recycles body buffers across requests on the hot query
// paths: request bodies are slurped into a pooled buffer and decoded
// with Unmarshal (cheaper than a fresh Decoder), responses are encoded
// into a pooled buffer and written in one shot with Content-Length set
// (no chunked framing).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decodeBody slurps and unmarshals a request body through the pool.
func decodeBody(r *http.Request, v any) error {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if _, err := buf.ReadFrom(io.LimitReader(r.Body, 64<<20)); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), v)
}

// writeJSONFast is writeJSON without indentation, for the hot query
// paths: compact output, pooled encode buffer, one Write.
func writeJSONFast(w http.ResponseWriter, code int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		writeErr(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeUnavailable is a 503 with a Retry-After hint, so well-behaved
// clients (pkg/searchclient included) back off before retrying.
func writeUnavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, msg)
}
