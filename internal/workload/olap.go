package workload

import (
	"fmt"

	"repro/internal/digest"
	"repro/internal/rng"
)

// ChunkID identifies one OLAP chunk (a cell range of the aggregated
// data cube, the caching unit of PeerOlap).
type ChunkID = digest.Key

// OlapConfig parameterizes the PeerOlap-like workload: peers issue
// multi-chunk OLAP queries over a shared cube; chunk popularity is
// skewed and correlated within analyst communities ("regions" of the
// cube that a department keeps re-aggregating).
type OlapConfig struct {
	// Chunks is the cube size in chunks.
	Chunks int
	// Regions partitions the cube into analyst communities.
	Regions int
	// PopularityTheta is the within-region Zipf skew.
	PopularityTheta float64
	// Peers is the number of participating workstations.
	Peers int
	// LocalFraction is the share of a peer's queries over its own
	// region.
	LocalFraction float64
	// ChunksPerQueryMean is the mean number of chunks one OLAP query
	// decomposes into (geometrically distributed, >= 1).
	ChunksPerQueryMean float64
	// QueriesPerHour is each peer's query rate.
	QueriesPerHour float64
}

// DefaultOlapConfig returns a laptop-scale configuration.
func DefaultOlapConfig() OlapConfig {
	return OlapConfig{
		Chunks:             20_000,
		Regions:            10,
		PopularityTheta:    0.9,
		Peers:              60,
		LocalFraction:      0.75,
		ChunksPerQueryMean: 5,
		QueriesPerHour:     60,
	}
}

// Validate reports configuration errors.
func (c OlapConfig) Validate() error {
	switch {
	case c.Chunks <= 0 || c.Regions <= 0 || c.Peers <= 0:
		return fmt.Errorf("workload: non-positive sizes in %+v", c)
	case c.Chunks%c.Regions != 0:
		return fmt.Errorf("workload: %d chunks not divisible into %d regions", c.Chunks, c.Regions)
	case c.LocalFraction < 0 || c.LocalFraction > 1:
		return fmt.Errorf("workload: local fraction %v outside [0,1]", c.LocalFraction)
	case c.ChunksPerQueryMean < 1:
		return fmt.Errorf("workload: chunks per query %v < 1", c.ChunksPerQueryMean)
	case c.QueriesPerHour <= 0:
		return fmt.Errorf("workload: non-positive query rate %v", c.QueriesPerHour)
	}
	return nil
}

// Cube is the chunk universe plus popularity structure.
type Cube struct {
	cfg       OlapConfig
	perRegion int
	pop       *rng.Zipf
}

// NewCube builds the chunk universe.
func NewCube(cfg OlapConfig) *Cube {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	per := cfg.Chunks / cfg.Regions
	return &Cube{cfg: cfg, perRegion: per, pop: rng.NewZipf(per, cfg.PopularityTheta)}
}

// Config returns the generating configuration.
func (c *Cube) Config() OlapConfig { return c.cfg }

// ChunksPerRegion returns the region partition size.
func (c *Cube) ChunksPerRegion() int { return c.perRegion }

// Chunk maps (region, rank) to a ChunkID; rank is 1-based.
func (c *Cube) Chunk(region, rank int) ChunkID {
	if region < 0 || region >= c.cfg.Regions || rank < 1 || rank > c.perRegion {
		panic(fmt.Sprintf("workload: chunk (%d,%d) out of range", region, rank))
	}
	return ChunkID(region*c.perRegion + rank - 1)
}

// Region returns the region of a chunk.
func (c *Cube) Region(ch ChunkID) int { return int(ch) / c.perRegion }

// AssignRegions gives each peer a home region, uniformly.
func (c *Cube) AssignRegions(s *rng.Stream) []int {
	out := make([]int, c.cfg.Peers)
	for i := range out {
		out[i] = s.Intn(c.cfg.Regions)
	}
	return out
}

// SampleQuery draws one OLAP query for a peer in the given region: a
// geometrically sized set of distinct chunks, drawn by popularity from
// the peer's region (or a uniform other region with probability
// 1 - LocalFraction; the whole query stays in one region, matching the
// locality of a drill-down session).
func (c *Cube) SampleQuery(s *rng.Stream, region int) []ChunkID {
	if !s.Bernoulli(c.cfg.LocalFraction) {
		other := s.Intn(c.cfg.Regions - 1)
		if other >= region {
			other++
		}
		region = other
	}
	// Geometric chunk count with the configured mean (>= 1):
	// P(stop) = 1/mean after the first chunk.
	n := 1
	stop := 1 / c.cfg.ChunksPerQueryMean
	for !s.Bernoulli(stop) && n < 64 {
		n++
	}
	seen := make(map[ChunkID]struct{}, n)
	out := make([]ChunkID, 0, n)
	for attempts := 0; len(out) < n && attempts < n*20; attempts++ {
		ch := c.Chunk(region, c.pop.Rank(s))
		if _, dup := seen[ch]; !dup {
			seen[ch] = struct{}{}
			out = append(out, ch)
		}
	}
	return out
}
