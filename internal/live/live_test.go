package live

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// cluster spins up n in-process nodes on a shared ChanTransport.
func cluster(t *testing.T, n, neighbors, ttl, threshold int) ([]*Node, *ChanTransport) {
	t.Helper()
	tr := NewChanTransport()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(Config{
			ID:                topology.NodeID(i),
			Neighbors:         neighbors,
			TTL:               ttl,
			Transport:         tr,
			Store:             MapStore{},
			Class:             netsim.Cable,
			ReconfigThreshold: threshold,
		})
		tr.Attach(nodes[i])
		nodes[i].Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})
	return nodes, tr
}

// link wires a symmetric edge for bootstrap.
func link(a, b *Node) {
	a.AddNeighbor(b.ID())
	b.AddNeighbor(a.ID())
}

func TestMapStore(t *testing.T) {
	s := MapStore{}
	if s.Has(1) {
		t.Fatal("empty store has key")
	}
	s.Add(1)
	if !s.Has(1) {
		t.Fatal("store lost key")
	}
}

func TestSearchFindsDirectNeighbor(t *testing.T) {
	nodes, _ := cluster(t, 3, 4, 2, 0)
	nodes[1].cfg.Store.(MapStore).Add(42)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	hits := nodes[0].Search(42, 200*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 1 {
		t.Fatalf("hits: %+v", hits)
	}
	if hits[0].Hops != 1 {
		t.Fatalf("hops = %d", hits[0].Hops)
	}
	if hits[0].Class != netsim.Cable {
		t.Fatalf("class = %v", hits[0].Class)
	}
}

func TestSearchTraversesMultipleHops(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 3, 0)
	// Chain 0-1-2-3; content at 3 (three hops away).
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	link(nodes[2], nodes[3])
	nodes[3].cfg.Store.(MapStore).Add(7)
	hits := nodes[0].Search(7, 300*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 3 || hits[0].Hops != 3 {
		t.Fatalf("hits: %+v", hits)
	}
}

func TestSearchRespectsTTL(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 2, 0)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	link(nodes[2], nodes[3])
	nodes[3].cfg.Store.(MapStore).Add(7)
	if hits := nodes[0].Search(7, 200*time.Millisecond); len(hits) != 0 {
		t.Fatalf("TTL 2 found a 3-hop holder: %+v", hits)
	}
}

func TestSearchMiss(t *testing.T) {
	nodes, _ := cluster(t, 2, 4, 2, 0)
	link(nodes[0], nodes[1])
	if hits := nodes[0].Search(999, 100*time.Millisecond); len(hits) != 0 {
		t.Fatalf("miss returned hits: %+v", hits)
	}
}

func TestSearchCollectsMultipleHolders(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 1, 0)
	for i := 1; i < 4; i++ {
		link(nodes[0], nodes[i])
		nodes[i].cfg.Store.(MapStore).Add(5)
	}
	hits := nodes[0].Search(5, 300*time.Millisecond)
	if len(hits) != 3 {
		t.Fatalf("expected 3 holders, got %+v", hits)
	}
}

func TestServingNodeDoesNotForward(t *testing.T) {
	nodes, _ := cluster(t, 3, 4, 3, 0)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	nodes[1].cfg.Store.(MapStore).Add(5)
	nodes[2].cfg.Store.(MapStore).Add(5)
	hits := nodes[0].Search(5, 300*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 1 {
		t.Fatalf("propagation past a serving node: %+v", hits)
	}
}

func TestStatisticsAccumulate(t *testing.T) {
	nodes, _ := cluster(t, 2, 4, 1, 0)
	link(nodes[0], nodes[1])
	nodes[1].cfg.Store.(MapStore).Add(5)
	nodes[0].Search(5, 200*time.Millisecond)
	var benefit float64
	nodes[0].do(func(st *state) {
		if r := st.ledger.Get(1); r != nil {
			benefit = r.Benefit
		}
	})
	// One result, R=1, cable weight 2 => benefit 2.
	if benefit != 2 {
		t.Fatalf("benefit = %v, want 2", benefit)
	}
}

func TestReconfigureInvitesBestPeer(t *testing.T) {
	// Capacity 2 so the relay node 1 can hold both edges of the chain
	// 0-1-2; node 2 holds the content two hops away.
	nodes, _ := cluster(t, 4, 2, 2, 0)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	nodes[2].cfg.Store.(MapStore).Add(9)
	hits := nodes[0].Search(9, 300*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 2 {
		t.Fatalf("setup search failed: %+v", hits)
	}
	nodes[0].Reconfigure()
	deadline := time.After(2 * time.Second)
	for {
		if hasNeighbor(nodes[0], 2) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("node 0 never adopted the discovered holder: %v", nodes[0].Neighbors())
		case <-time.After(10 * time.Millisecond):
		}
	}
	// The invited node must now list 0 as a neighbor too.
	deadline = time.After(2 * time.Second)
	for {
		if hasNeighbor(nodes[2], 0) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("invited node did not add the inviter: %v", nodes[2].Neighbors())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// hasNeighbor reports whether node n currently lists id.
func hasNeighbor(n *Node, id topology.NodeID) bool {
	for _, v := range n.Neighbors() {
		if v == id {
			return true
		}
	}
	return false
}

func TestEvictionResetsStatistics(t *testing.T) {
	nodes, _ := cluster(t, 2, 4, 2, 0)
	link(nodes[0], nodes[1])
	nodes[1].cfg.Store.(MapStore).Add(5)
	nodes[0].Search(5, 200*time.Millisecond)
	// Node 0 evicts node 1 by hand.
	nodes[0].do(func(st *state) {
		removeNeighbor(st, 1)
	})
	nodes[1].Deliver(Envelope{Type: MsgEvict, From: 0})
	time.Sleep(50 * time.Millisecond)
	var hasStats bool
	nodes[1].do(func(st *state) { hasStats = st.ledger.Get(0) != nil })
	if hasStats {
		t.Fatal("evicted node kept statistics about evictor")
	}
	for _, v := range nodes[1].Neighbors() {
		if v == 0 {
			t.Fatal("evicted edge still present")
		}
	}
}

func TestAutomaticReconfigurationAfterThreshold(t *testing.T) {
	nodes, _ := cluster(t, 3, 2, 2, 2) // θ=2, capacity 2
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	nodes[2].cfg.Store.(MapStore).Add(9)
	nodes[0].Search(9, 200*time.Millisecond)
	nodes[0].Search(9, 200*time.Millisecond) // second search crosses θ
	deadline := time.After(2 * time.Second)
	for {
		if hasNeighbor(nodes[0], 2) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("automatic reconfiguration never happened: %v", nodes[0].Neighbors())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Diamond 0-{1,2}-3: node 3 must answer exactly once.
	nodes, _ := cluster(t, 4, 4, 2, 0)
	link(nodes[0], nodes[1])
	link(nodes[0], nodes[2])
	link(nodes[1], nodes[3])
	link(nodes[2], nodes[3])
	nodes[3].cfg.Store.(MapStore).Add(5)
	hits := nodes[0].Search(5, 300*time.Millisecond)
	if len(hits) != 1 {
		t.Fatalf("duplicate replies: %+v", hits)
	}
}

func TestNodePanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"nil transport": {Store: MapStore{}, Neighbors: 1, TTL: 1},
		"nil store":     {Transport: NewChanTransport(), Neighbors: 1, TTL: 1},
		"zero cap":      {Transport: NewChanTransport(), Store: MapStore{}, TTL: 1},
		"zero ttl":      {Transport: NewChanTransport(), Store: MapStore{}, Neighbors: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			NewNode(cfg)
		}()
	}
}

func TestChanTransportUnknownNode(t *testing.T) {
	tr := NewChanTransport()
	if err := tr.Send(99, Envelope{}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestChanTransportUnregister(t *testing.T) {
	tr := NewChanTransport()
	tr.Register(1)
	tr.Unregister(1)
	if err := tr.Send(1, Envelope{}); err == nil {
		t.Fatal("send after unregister succeeded")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, m := range []MsgType{MsgQuery, MsgHit, MsgInvite, MsgInviteReply, MsgEvict} {
		if m.String() == "" {
			t.Fatalf("type %d has empty string", m)
		}
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	tr := NewTCPTransport()
	defer tr.Close()

	a := NewNode(Config{ID: 0, Neighbors: 4, TTL: 2, Transport: tr, Store: MapStore{}, Class: netsim.LAN})
	b := NewNode(Config{ID: 1, Neighbors: 4, TTL: 2, Transport: tr, Store: MapStore{5: {}}, Class: netsim.LAN})
	addrA, stopA, err := Listen("127.0.0.1:0", a.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer stopA()
	addrB, stopB, err := Listen("127.0.0.1:0", b.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer stopB()
	tr.SetAddr(0, addrA)
	tr.SetAddr(1, addrB)

	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()
	a.AddNeighbor(1)
	b.AddNeighbor(0)

	hits := a.Search(5, 500*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 1 {
		t.Fatalf("TCP search hits: %+v", hits)
	}
}

func TestTCPTransportUnknownAddress(t *testing.T) {
	tr := NewTCPTransport()
	if err := tr.Send(42, Envelope{}); err == nil {
		t.Fatal("send to unknown address succeeded")
	}
}

func TestQueryMaxHitsReturnsEarly(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 1, 0)
	for i := 1; i < 4; i++ {
		link(nodes[0], nodes[i])
		nodes[i].cfg.Store.(MapStore).Add(5)
	}
	start := time.Now()
	hits := nodes[0].Query(QueryOpts{Key: 5, Timeout: 10 * time.Second, MaxHits: 1})
	if len(hits) != 1 {
		t.Fatalf("MaxHits 1 returned %d hits", len(hits))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("early return took %v (timeout-bound, not hit-bound)", elapsed)
	}
}

func TestQueryTTLOverride(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 2, 0) // config TTL 2
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	link(nodes[2], nodes[3])
	nodes[3].cfg.Store.(MapStore).Add(7)
	if hits := nodes[0].Query(QueryOpts{Key: 7, Timeout: 200 * time.Millisecond}); len(hits) != 0 {
		t.Fatalf("config TTL 2 reached a 3-hop holder: %+v", hits)
	}
	hits := nodes[0].Query(QueryOpts{Key: 7, TTL: 3, Timeout: 300 * time.Millisecond, MaxHits: 1})
	if len(hits) != 1 || hits[0].Holder != 3 {
		t.Fatalf("TTL override 3 missed the holder: %+v", hits)
	}
}

func TestCloseDrainsQueuedEnvelopes(t *testing.T) {
	// A stopped-Start node accumulates envelopes in its inbox; Close
	// must process all of them before returning. The node serves key 5,
	// so each drained query envelope produces a hit reply we can count.
	tr := NewChanTransport()
	stats := &NodeStats{}
	served := NewNode(Config{ID: 1, Neighbors: 4, TTL: 2, Transport: tr,
		Store: MapStore{5: {}}, Class: netsim.Cable, Stats: stats})
	tr.Attach(served)
	const queued = 500
	for i := 0; i < queued; i++ {
		served.Deliver(Envelope{Type: MsgQuery, From: 0, QueryID: core.QueryID(i + 1),
			Key: 5, Origin: 0, TTL: 2, Hops: 1})
	}
	served.Start()
	served.Close()
	if got := stats.QueriesSeen.Load(); got != queued {
		t.Fatalf("Close drained %d of %d queued queries", got, queued)
	}
	if got := stats.HitsServed.Load(); got != queued {
		t.Fatalf("drained queries served %d of %d hits", got, queued)
	}
	// Idempotent, and Stop after Close is a no-op.
	served.Close()
	served.Stop()
}

func TestCloseThenDeliverDrops(t *testing.T) {
	tr := NewChanTransport()
	n := NewNode(Config{ID: 0, Neighbors: 4, TTL: 2, Transport: tr,
		Store: MapStore{}, Class: netsim.Cable, Stats: &NodeStats{}})
	n.Start()
	n.Close()
	// Must not block or panic after the loop has exited.
	n.Deliver(Envelope{Type: MsgQuery, QueryID: 1, Key: 5, Origin: 0, TTL: 2, Hops: 1})
}

func TestTCPDialRetrySucceedsAfterPeerBoots(t *testing.T) {
	// Reserve an address, close the listener (refused dials), then
	// bring the real listener up while Send is inside its retry loop.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	tr := NewTCPTransport()
	defer tr.Close()
	tr.DialBackoff = 50 * time.Millisecond
	tr.SetAddr(1, addr)

	got := make(chan Envelope, 1)
	go func() {
		time.Sleep(80 * time.Millisecond) // inside attempt 2's backoff
		_, stop, err := Listen(addr, func(env Envelope) { got <- env })
		if err != nil {
			t.Errorf("late listen: %v", err)
			return
		}
		t.Cleanup(stop)
	}()
	if err := tr.Send(1, Envelope{Type: MsgQuery, QueryID: 9}); err != nil {
		t.Fatalf("send with retry failed: %v", err)
	}
	select {
	case env := <-got:
		if env.QueryID != 9 {
			t.Fatalf("delivered %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("retried send never delivered")
	}
}

func TestTCPDialCooldownFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	tr := NewTCPTransport()
	tr.MaxDialAttempts = 2
	tr.DialBackoff = 5 * time.Millisecond
	tr.DialCooldown = time.Hour
	tr.SetAddr(1, addr)
	if err := tr.Send(1, Envelope{}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	start := time.Now()
	if err := tr.Send(1, Envelope{}); err == nil {
		t.Fatal("cooldown send succeeded")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cooldown send took %v (re-dialed instead of failing fast)", elapsed)
	}
	// A fresh address clears the cooldown.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	tr.SetAddr(1, ln2.Addr().String())
	if err := tr.Send(1, Envelope{}); err != nil {
		t.Fatalf("send after address refresh failed: %v", err)
	}
	tr.Close()
}
