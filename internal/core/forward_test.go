package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

func ids(xs ...int) []topology.NodeID {
	out := make([]topology.NodeID, len(xs))
	for i, x := range xs {
		out[i] = topology.NodeID(x)
	}
	return out
}

func TestFloodSelectsAllButSenderAndOrigin(t *testing.T) {
	q := &Query{Origin: 9}
	got := Flood{}.Select(q, 0, 2, ids(1, 2, 3, 9), nil, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Flood.Select = %v", got)
	}
}

func TestFloodFromNoneKeepsAll(t *testing.T) {
	q := &Query{Origin: 0}
	got := Flood{}.Select(q, 0, topology.None, ids(1, 2, 3), nil, nil)
	if len(got) != 3 {
		t.Fatalf("Flood.Select = %v", got)
	}
}

func TestRandomKBounds(t *testing.T) {
	s := rng.New(1)
	p := RandomK{K: 2, Intn: s.Intn}
	q := &Query{Origin: 99}
	for i := 0; i < 100; i++ {
		got := p.Select(q, 0, topology.None, ids(1, 2, 3, 4, 5), nil, nil)
		if len(got) != 2 {
			t.Fatalf("RandomK returned %d", len(got))
		}
		if got[0] == got[1] {
			t.Fatal("RandomK returned duplicates")
		}
	}
}

func TestRandomKDegeneratesToFlood(t *testing.T) {
	s := rng.New(2)
	p := RandomK{K: 10, Intn: s.Intn}
	got := p.Select(&Query{Origin: 99}, 0, topology.None, ids(1, 2), nil, nil)
	if len(got) != 2 {
		t.Fatalf("RandomK(K>len) = %v", got)
	}
}

func TestRandomKCoversAllNeighbors(t *testing.T) {
	s := rng.New(3)
	p := RandomK{K: 1, Intn: s.Intn}
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 500; i++ {
		got := p.Select(&Query{Origin: 99}, 0, topology.None, ids(1, 2, 3), nil, nil)
		seen[got[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("RandomK never selected some neighbors: %v", seen)
	}
}

func TestDirectedBFTTopK(t *testing.T) {
	led := stats.NewLedger()
	led.Touch(1).Benefit = 1
	led.Touch(2).Benefit = 5
	led.Touch(3).Benefit = 3
	p := DirectedBFT{K: 2, Benefit: stats.Cumulative{}}
	got := p.Select(&Query{Origin: 99}, 0, topology.None, ids(1, 2, 3), led, nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("DirectedBFT.Select = %v", got)
	}
}

func TestDirectedBFTUnknownPeersScoreZero(t *testing.T) {
	led := stats.NewLedger()
	led.Touch(3).Benefit = 1
	p := DirectedBFT{K: 1, Benefit: stats.Cumulative{}}
	got := p.Select(&Query{Origin: 99}, 0, topology.None, ids(1, 2, 3), led, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("DirectedBFT.Select = %v", got)
	}
}

func TestDirectedBFTNilLedgerFallsBack(t *testing.T) {
	p := DirectedBFT{K: 1, Benefit: stats.Cumulative{}}
	got := p.Select(&Query{Origin: 99}, 0, topology.None, ids(1, 2, 3), nil, nil)
	if len(got) != 3 {
		t.Fatalf("nil-ledger DirectedBFT = %v (must degrade to flood)", got)
	}
}

func TestDirectedBFTTieBreaksByID(t *testing.T) {
	led := stats.NewLedger()
	led.Touch(1).Benefit = 5
	led.Touch(2).Benefit = 5
	led.Touch(3).Benefit = 5
	p := DirectedBFT{K: 2, Benefit: stats.Cumulative{}}
	got := p.Select(&Query{Origin: 99}, 0, topology.None, ids(3, 1, 2), led, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("tie-break = %v, want [1 2]", got)
	}
}

func TestDigestGuidedFiltersBySummary(t *testing.T) {
	may := map[topology.NodeID]bool{2: true}
	p := DigestGuided{
		MayHold: func(id topology.NodeID, _ Key) bool { return may[id] },
	}
	got := p.Select(&Query{Origin: 99, Key: 7}, 0, topology.None, ids(1, 2, 3), nil, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("DigestGuided.Select = %v", got)
	}
}

func TestDigestGuidedFallback(t *testing.T) {
	p := DigestGuided{
		MayHold:  func(topology.NodeID, Key) bool { return false },
		Fallback: Flood{},
	}
	got := p.Select(&Query{Origin: 99, Key: 7}, 0, topology.None, ids(1, 2), nil, nil)
	if len(got) != 2 {
		t.Fatalf("fallback not used: %v", got)
	}
}

func TestDigestGuidedNoFallback(t *testing.T) {
	p := DigestGuided{MayHold: func(topology.NodeID, Key) bool { return false }}
	got := p.Select(&Query{Origin: 99, Key: 7}, 0, topology.None, ids(1, 2), nil, nil)
	if len(got) != 0 {
		t.Fatalf("nil fallback must select none: %v", got)
	}
}

func TestPolicyNames(t *testing.T) {
	s := rng.New(1)
	for _, p := range []ForwardPolicy{
		Flood{},
		RandomK{K: 2, Intn: s.Intn},
		DirectedBFT{K: 2, Benefit: stats.Cumulative{}},
		DigestGuided{MayHold: func(topology.NodeID, Key) bool { return true }},
	} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}
