package core

import (
	"testing"

	"repro/internal/stats"
)

func newTrialTracker(e *testEnv) *TrialTracker {
	return &TrialTracker{
		Threshold: 100,
		Benefit:   stats.Cumulative{},
		Updater:   &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept},
	}
}

func TestTrialKeepsBeneficialGuest(t *testing.T) {
	e := newTestEnv(3, 2)
	e.net.Connect(0, 1) // host 0, guest 1
	tr := newTrialTracker(e)
	tr.Begin(0, 0, 1)
	// The guest served something during probation.
	e.ledgers[0].Touch(1).Benefit = 5
	kept, evicted := tr.Expire(e, 150)
	if kept != 1 || evicted != 0 {
		t.Fatalf("kept=%d evicted=%d", kept, evicted)
	}
	if !e.net.Node(0).Out.Contains(1) {
		t.Fatal("beneficial guest evicted")
	}
	if tr.Pending() != 0 {
		t.Fatal("resolved trial still pending")
	}
}

func TestTrialEvictsUselessGuest(t *testing.T) {
	e := newTestEnv(3, 2)
	e.net.Connect(0, 1)
	tr := newTrialTracker(e)
	tr.Begin(0, 0, 1)
	// No statistics accumulated: the guest never helped.
	kept, evicted := tr.Expire(e, 150)
	if kept != 0 || evicted != 1 {
		t.Fatalf("kept=%d evicted=%d", kept, evicted)
	}
	if e.net.Node(0).Out.Contains(1) {
		t.Fatal("useless guest kept")
	}
	// Eviction semantics: the guest reset its stats about the host.
	if e.ledgers[1].Get(0) != nil {
		t.Fatal("evicted guest kept stats about host")
	}
}

func TestTrialNotDueYet(t *testing.T) {
	e := newTestEnv(3, 2)
	e.net.Connect(0, 1)
	tr := newTrialTracker(e)
	tr.Begin(0, 0, 1)
	kept, evicted := tr.Expire(e, 50) // before the deadline
	if kept != 0 || evicted != 0 {
		t.Fatalf("early expiry resolved a trial: kept=%d evicted=%d", kept, evicted)
	}
	if tr.Pending() != 1 {
		t.Fatal("pending trial lost")
	}
}

func TestTrialSkipsDissolvedEdges(t *testing.T) {
	e := newTestEnv(3, 2)
	e.net.Connect(0, 1)
	tr := newTrialTracker(e)
	tr.Begin(0, 0, 1)
	e.net.Disconnect(0, 1) // churn removed the edge meanwhile
	kept, evicted := tr.Expire(e, 150)
	if kept != 0 || evicted != 0 {
		t.Fatalf("dissolved trial resolved: kept=%d evicted=%d", kept, evicted)
	}
}

func TestTrialDuplicateBeginIgnored(t *testing.T) {
	e := newTestEnv(3, 2)
	tr := newTrialTracker(e)
	tr.Begin(0, 0, 1)
	tr.Begin(10, 0, 1)
	if tr.Pending() != 1 {
		t.Fatalf("duplicate trial registered: %d pending", tr.Pending())
	}
}

func TestTrialDrop(t *testing.T) {
	e := newTestEnv(4, 2)
	tr := newTrialTracker(e)
	tr.Begin(0, 0, 1)
	tr.Begin(0, 2, 3)
	tr.Drop(1) // node 1 went off-line
	if tr.Pending() != 1 {
		t.Fatalf("Drop left %d trials", tr.Pending())
	}
}

func TestTrialPanics(t *testing.T) {
	e := newTestEnv(2, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero threshold did not panic")
			}
		}()
		(&TrialTracker{}).Begin(0, 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("missing updater did not panic")
			}
		}()
		tr := &TrialTracker{Threshold: 1}
		tr.Begin(0, 0, 1)
		tr.Expire(e, 100)
	}()
}
