// Package live runs the framework on real concurrent nodes instead of
// the discrete-event simulator: every node is a goroutine-driven actor
// with an inbox, and messages travel over a pluggable Transport — an
// in-process channel fabric for tests and single-binary demos, or
// TCP with gob encoding for multi-process deployments (cmd/dsearch).
//
// The protocol is the paper's Algo 5 adapted to a real network: queries
// flood with a TTL and duplicate suppression, hits reply directly to
// the origin (carrying the answering link's bandwidth class, as the
// Gnutella Ping-Pong protocol does), and neighbor updates use
// invitation/eviction messages with the always-accept policy.
package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	MsgQuery MsgType = iota
	MsgHit
	MsgInvite
	MsgInviteReply
	MsgEvict
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgQuery:
		return "query"
	case MsgHit:
		return "hit"
	case MsgInvite:
		return "invite"
	case MsgInviteReply:
		return "invite-reply"
	case MsgEvict:
		return "evict"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Envelope is the wire message. All fields are exported and
// gob-encodable; unused fields stay zero.
type Envelope struct {
	Type MsgType
	From topology.NodeID

	// Query / Hit fields.
	QueryID core.QueryID
	Key     core.Key
	Origin  topology.NodeID
	TTL     int
	Hops    int
	// Class is the answering node's bandwidth class on hits.
	Class netsim.BandwidthClass

	// InviteReply field.
	Accept bool
}

// Transport delivers envelopes between nodes. Implementations must be
// safe for concurrent use.
type Transport interface {
	// Send delivers env to node to. Delivery is asynchronous;
	// implementations may drop messages to unknown or stopped nodes
	// and report the failure.
	Send(to topology.NodeID, env Envelope) error
}

// ChanTransport is an in-process fabric: one buffered channel per node.
type ChanTransport struct {
	mu    sync.RWMutex
	boxes map[topology.NodeID]chan Envelope
}

// NewChanTransport returns an empty fabric.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{boxes: make(map[topology.NodeID]chan Envelope)}
}

// Register creates (or returns) the inbox for node id.
func (t *ChanTransport) Register(id topology.NodeID) chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	if box, ok := t.boxes[id]; ok {
		return box
	}
	box := make(chan Envelope, 1024)
	t.boxes[id] = box
	return box
}

// Attach wires a node's inbox into the fabric, replacing any channel
// previously registered for its ID.
func (t *ChanTransport) Attach(n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.boxes[n.ID()] = n.Inbox()
}

// Unregister removes a node's inbox; pending messages are dropped.
func (t *ChanTransport) Unregister(id topology.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.boxes, id)
}

// Send implements Transport. A full inbox drops the message (backpressure
// by loss, as UDP-era Gnutella did) rather than blocking the sender.
func (t *ChanTransport) Send(to topology.NodeID, env Envelope) error {
	t.mu.RLock()
	box, ok := t.boxes[to]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: no inbox for node %d", to)
	}
	select {
	case box <- env:
		return nil
	default:
		return fmt.Errorf("live: inbox of node %d is full", to)
	}
}

// TCPTransport sends envelopes over TCP connections with gob encoding.
// Every process registers its peers' listen addresses; connections are
// pooled per destination, and each destination carries its own lock so
// a slow or dead peer never blocks sends to healthy ones.
//
// Dial failures are non-fatal: Send retries a bounded number of times
// with exponential backoff (a peer that is still booting becomes
// reachable mid-bootstrap instead of losing the message), and after
// the final failure the destination enters a cooldown during which
// sends fail fast — the lossy-network semantics the protocol already
// tolerates, without a dial storm against a dead peer.
type TCPTransport struct {
	// MaxDialAttempts bounds connection attempts per Send (default 4).
	MaxDialAttempts int
	// DialBackoff is the base of the first retry delay; each attempt
	// doubles it and the actual sleep is jittered uniformly over
	// [base/2, base] so peers retrying the same dead destination never
	// synchronize into a dial storm (default 25ms).
	DialBackoff time.Duration
	// DialCooldown is how long a destination fails fast after
	// MaxDialAttempts consecutive dial failures (default 250ms).
	DialCooldown time.Duration

	mu    sync.Mutex
	dests map[topology.NodeID]*tcpDest
	// closed is closed by Close; backoff sleeps select on it so a
	// draining process is never pinned by a peer mid-retry.
	closed    chan struct{}
	closeOnce sync.Once
	// jitterState seeds the backoff jitter stream (splitmix64 steps
	// under mu; no dependency on the deterministic rng package — dial
	// timing is wall-clock territory).
	jitterState uint64
}

type tcpDest struct {
	mu        sync.Mutex
	addr      string
	c         net.Conn
	enc       *gob.Encoder
	downUntil time.Time
}

// NewTCPTransport returns a transport with no known peers and default
// retry parameters.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		MaxDialAttempts: 4,
		DialBackoff:     25 * time.Millisecond,
		DialCooldown:    250 * time.Millisecond,
		dests:           make(map[topology.NodeID]*tcpDest),
		closed:          make(chan struct{}),
		jitterState:     uint64(time.Now().UnixNano()),
	}
}

// jitter maps backoff to a uniform duration in [backoff/2, backoff].
func (t *TCPTransport) jitter(backoff time.Duration) time.Duration {
	t.mu.Lock()
	t.jitterState += 0x9e3779b97f4a7c15
	z := t.jitterState
	t.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	return backoff/2 + time.Duration(u*float64(backoff/2))
}

// SetAddr registers the listen address of a peer. Re-registering the
// same address is a no-op (gossip refreshes are idempotent); a changed
// address closes the pooled connection so the next Send re-dials.
func (t *TCPTransport) SetAddr(id topology.NodeID, addr string) {
	t.mu.Lock()
	d, ok := t.dests[id]
	if !ok {
		t.dests[id] = &tcpDest{addr: addr}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.addr == addr {
		return
	}
	d.addr = addr
	d.downUntil = time.Time{}
	if d.c != nil {
		d.c.Close()
		d.c, d.enc = nil, nil
	}
}

// Addrs returns a snapshot of the registered peer address book.
func (t *TCPTransport) Addrs() map[topology.NodeID]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[topology.NodeID]string, len(t.dests))
	for id, d := range t.dests {
		d.mu.Lock()
		out[id] = d.addr
		d.mu.Unlock()
	}
	return out
}

// Send implements Transport.
func (t *TCPTransport) Send(to topology.NodeID, env Envelope) error {
	t.mu.Lock()
	d, ok := t.dests[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("live: no address for node %d", to)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c == nil {
		if until := d.downUntil; !until.IsZero() && time.Now().Before(until) {
			return fmt.Errorf("live: node %d unreachable (cooldown)", to)
		}
		attempts := t.MaxDialAttempts
		if attempts < 1 {
			attempts = 1
		}
		backoff := t.DialBackoff
		var err error
		for i := 0; i < attempts; i++ {
			if i > 0 {
				// Jittered, interruptible backoff: Close unblocks the sleep
				// immediately so a draining process is not held hostage by a
				// peer in retry.
				timer := time.NewTimer(t.jitter(backoff))
				select {
				case <-t.closed:
					timer.Stop()
					return fmt.Errorf("live: transport closed while dialing node %d: %w", to, err)
				case <-timer.C:
				}
				backoff *= 2
			}
			select {
			case <-t.closed:
				return fmt.Errorf("live: transport closed while dialing node %d", to)
			default:
			}
			var c net.Conn
			if c, err = net.Dial("tcp", d.addr); err == nil {
				d.c, d.enc = c, gob.NewEncoder(c)
				d.downUntil = time.Time{}
				break
			}
		}
		if d.c == nil {
			d.downUntil = time.Now().Add(t.DialCooldown)
			return fmt.Errorf("live: dial node %d: %w", to, err)
		}
	}
	if err := d.enc.Encode(env); err != nil {
		d.c.Close()
		d.c, d.enc = nil, nil
		return fmt.Errorf("live: send to node %d: %w", to, err)
	}
	return nil
}

// Close shuts all pooled connections and unblocks any Send waiting in
// dial backoff; subsequent Sends fail fast.
func (t *TCPTransport) Close() {
	t.closeOnce.Do(func() { close(t.closed) })
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range t.dests {
		d.mu.Lock()
		if d.c != nil {
			d.c.Close()
			d.c, d.enc = nil, nil
		}
		d.mu.Unlock()
	}
}

// Listen starts a TCP listener that decodes envelopes into deliver.
// It returns the bound address and a stop function.
func Listen(addr string, deliver func(Envelope)) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
		done  = make(chan struct{})
	)
	track := func(c net.Conn) bool {
		mu.Lock()
		defer mu.Unlock()
		select {
		case <-done:
			return false
		default:
		}
		conns[c] = struct{}{}
		return true
	}
	untrack := func(c net.Conn) {
		mu.Lock()
		delete(conns, c)
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Transient Accept errors (EMFILE, aborted handshakes) back off
		// geometrically instead of spinning hot; any success resets.
		backoff := time.Duration(0)
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-done:
					return
				default:
				}
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff < 100*time.Millisecond {
					backoff *= 2
				}
				time.Sleep(backoff)
				continue
			}
			backoff = 0
			if !track(conn) {
				conn.Close()
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer untrack(c)
				defer c.Close()
				dec := gob.NewDecoder(c)
				for {
					var env Envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					deliver(env)
				}
			}(conn)
		}
	}()
	stop := func() {
		mu.Lock()
		close(done)
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		ln.Close()
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}
