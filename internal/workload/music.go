// Package workload generates the synthetic workloads of the paper's
// evaluation: the Section 4.2 music-sharing dataset (songs, categories,
// user libraries, queries, churn) plus the web-proxy and OLAP-chunk
// workloads used by the additional case studies.
//
// Everything is driven by deterministic rng.Streams so that an
// experiment seed fully determines the dataset and the query sequence.
package workload

import (
	"fmt"

	"repro/internal/digest"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// SongID identifies a song globally: category*songsPerCategory + rank-1
// (rank 1 = most popular in its category). It doubles as the content
// key in the search framework.
type SongID = digest.Key

// MusicConfig holds the Section 4.2 parameters. The zero value is not
// usable; start from DefaultMusicConfig.
type MusicConfig struct {
	// Songs is the size of the search space ("200,000 distinct files").
	Songs int
	// Categories is the number of music genres ("50 categories").
	Categories int
	// PopularityTheta is the within-category Zipf skew (0.9).
	PopularityTheta float64
	// UserCategoryTheta is the Zipf skew of the assignment of users to
	// favorite categories (0.9).
	UserCategoryTheta float64
	// Users is the network size ("2,000 users").
	Users int
	// LibraryMean and LibraryStd parameterize the Gaussian library
	// size (200 / 50).
	LibraryMean, LibraryStd float64
	// FavoriteFraction is the share of a library drawn from the
	// favorite category (0.5).
	FavoriteFraction float64
	// OtherCategories is how many non-favorite categories contribute
	// the remainder (5, at 10% each).
	OtherCategories int
}

// DefaultMusicConfig returns the paper's exact settings.
func DefaultMusicConfig() MusicConfig {
	return MusicConfig{
		Songs:             200_000,
		Categories:        50,
		PopularityTheta:   0.9,
		UserCategoryTheta: 0.9,
		Users:             2000,
		LibraryMean:       200,
		LibraryStd:        50,
		FavoriteFraction:  0.5,
		OtherCategories:   5,
	}
}

// Scaled returns the configuration shrunk by factor f (>= 1) for CI
// runs: users, songs and library sizes divide by f, preserving the
// songs-per-user density that drives hit rates.
func (c MusicConfig) Scaled(f int) MusicConfig {
	if f <= 1 {
		return c
	}
	c.Songs /= f
	c.Users /= f
	c.LibraryMean /= float64(f)
	c.LibraryStd /= float64(f)
	if c.LibraryMean < 10 {
		c.LibraryMean, c.LibraryStd = 10, 3
	}
	return c
}

// Validate reports configuration errors.
func (c MusicConfig) Validate() error {
	switch {
	case c.Songs <= 0 || c.Categories <= 0 || c.Users <= 0:
		return fmt.Errorf("workload: non-positive sizes in %+v", c)
	case c.Songs%c.Categories != 0:
		return fmt.Errorf("workload: %d songs not divisible into %d categories", c.Songs, c.Categories)
	case c.OtherCategories >= c.Categories:
		return fmt.Errorf("workload: %d other categories with only %d total", c.OtherCategories, c.Categories)
	case c.LibraryMean <= 0:
		return fmt.Errorf("workload: non-positive library mean %v", c.LibraryMean)
	case c.FavoriteFraction < 0 || c.FavoriteFraction > 1:
		return fmt.Errorf("workload: favorite fraction %v outside [0,1]", c.FavoriteFraction)
	}
	return nil
}

// Catalog is the global song space: equally sized categories with
// Zipf-distributed within-category popularity.
type Catalog struct {
	cfg      MusicConfig
	perCat   int
	pop      *rng.Zipf // within-category popularity (shared: all categories equal size)
	userCats *rng.Zipf // assignment of users to favorite categories
}

// NewCatalog builds the catalog for a configuration.
func NewCatalog(cfg MusicConfig) *Catalog {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	perCat := cfg.Songs / cfg.Categories
	return &Catalog{
		cfg:      cfg,
		perCat:   perCat,
		pop:      rng.NewZipf(perCat, cfg.PopularityTheta),
		userCats: rng.NewZipf(cfg.Categories, cfg.UserCategoryTheta),
	}
}

// Config returns the generating configuration.
func (c *Catalog) Config() MusicConfig { return c.cfg }

// SongsPerCategory returns the category size.
func (c *Catalog) SongsPerCategory() int { return c.perCat }

// Song maps (category, rank) to a SongID. rank is 1-based.
func (c *Catalog) Song(category, rank int) SongID {
	if category < 0 || category >= c.cfg.Categories || rank < 1 || rank > c.perCat {
		panic(fmt.Sprintf("workload: song (%d, %d) out of range", category, rank))
	}
	return SongID(category*c.perCat + rank - 1)
}

// Category returns the category of a song.
func (c *Catalog) Category(s SongID) int { return int(s) / c.perCat }

// SampleSong draws a song from the given category by popularity.
func (c *Catalog) SampleSong(s *rng.Stream, category int) SongID {
	return c.Song(category, c.pop.Rank(s))
}

// SampleFavoriteCategory draws a user's favorite category (Zipf over
// categories).
func (c *Catalog) SampleFavoriteCategory(s *rng.Stream) int {
	return c.userCats.Index(s)
}

// User is one participant: a library, a preference profile and an
// access-link class.
type User struct {
	// Favorite is the user's favorite category (50% of library and
	// queries).
	Favorite int
	// Others are the user's 5 secondary categories (10% each).
	Others []int
	// Library is the set of songs the user shares.
	Library map[SongID]struct{}
	// Class is the user's access-link bandwidth class.
	Class netsim.BandwidthClass
}

// Has reports whether the user's library holds song s.
func (u *User) Has(s SongID) bool {
	_, ok := u.Library[s]
	return ok
}

// LibrarySize returns the number of songs shared.
func (u *User) LibrarySize() int { return len(u.Library) }

// GenerateUsers builds the full population per Section 4.2. The stream
// fully determines the result.
func GenerateUsers(cat *Catalog, s *rng.Stream) []*User {
	cfg := cat.cfg
	users := make([]*User, cfg.Users)
	classes := netsim.AssignClasses(s.Intn, cfg.Users)
	for i := range users {
		u := &User{
			Favorite: cat.SampleFavoriteCategory(s),
			Library:  make(map[SongID]struct{}),
			Class:    classes[i],
		}
		// Pick 5 distinct non-favorite categories.
		u.Others = sampleOtherCategories(s, cfg.Categories, u.Favorite, cfg.OtherCategories)

		size := int(s.Normal(cfg.LibraryMean, cfg.LibraryStd) + 0.5)
		if size < 1 {
			size = 1
		}
		favCount := int(cfg.FavoriteFraction*float64(size) + 0.5)
		fillLibrary(cat, s, u, u.Favorite, favCount)
		rest := size - len(u.Library)
		for j, other := range u.Others {
			// Spread the remainder evenly; the last category absorbs
			// rounding.
			share := rest / len(u.Others)
			if j == len(u.Others)-1 {
				share = rest - share*(len(u.Others)-1)
			}
			fillLibrary(cat, s, u, other, share)
		}
		users[i] = u
	}
	return users
}

// sampleOtherCategories picks k distinct categories != favorite.
func sampleOtherCategories(s *rng.Stream, total, favorite, k int) []int {
	out := make([]int, 0, k)
	seen := map[int]bool{favorite: true}
	for len(out) < k {
		c := s.Intn(total)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// fillLibrary adds count distinct songs from category by popularity.
// Popular songs collide often under Zipf; retries are bounded by
// attempts proportional to count, falling back to sequential ranks so
// generation always terminates even for tiny categories.
func fillLibrary(cat *Catalog, s *rng.Stream, u *User, category, count int) {
	if count > cat.perCat {
		count = cat.perCat
	}
	added := 0
	for attempts := 0; added < count && attempts < count*20; attempts++ {
		song := cat.SampleSong(s, category)
		if !u.Has(song) {
			u.Library[song] = struct{}{}
			added++
		}
	}
	for rank := 1; added < count && rank <= cat.perCat; rank++ {
		song := cat.Song(category, rank)
		if !u.Has(song) {
			u.Library[song] = struct{}{}
			added++
		}
	}
}

// SampleQuery draws the song a user asks for: favorite category with
// probability FavoriteFraction, otherwise one of the user's other
// categories uniformly; the song is drawn by popularity and resampled
// (bounded) to avoid songs the user already holds — users do not search
// for what they can play locally.
func SampleQuery(cat *Catalog, s *rng.Stream, u *User) SongID {
	// The category is drawn once so the bounded resampling below cannot
	// bias the 50/50 preference split (favorite-category songs are more
	// likely to be owned, so per-attempt redraws would skew away from
	// the favorite).
	category := u.Favorite
	if !s.Bernoulli(cat.cfg.FavoriteFraction) {
		category = u.Others[s.Intn(len(u.Others))]
	}
	song := cat.SampleSong(s, category)
	for attempt := 0; u.Has(song) && attempt < 16; attempt++ {
		song = cat.SampleSong(s, category)
	}
	return song
}

// TotalSongs returns the summed library sizes (the paper reports
// "approximately a total of 400,000 songs in the whole network").
func TotalSongs(users []*User) int {
	n := 0
	for _, u := range users {
		n += u.LibrarySize()
	}
	return n
}
