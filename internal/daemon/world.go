package daemon

import (
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/rng"
	"repro/internal/topology"
)

// World is the deterministic cluster universe: the wired overlay graph
// and the key placement, derived purely from (Seed, Nodes, Degree,
// Keys, Replicas). Every dsearchd process of one cluster builds the
// same World from its config and wires only its own shard of live
// nodes — no wiring protocol crosses the network, only envelope
// delivery does — and the parity harness rebuilds the same World to
// drive the internal/driver simulated twin over the identical graph
// and content. That shared construction is what makes "live hit-rate
// == simulated hit-rate" a meaningful equation rather than a
// statistical accident.
type World struct {
	Nodes    int
	Degree   int
	Keys     int
	Replicas int
	Seed     uint64

	// Net is the wired overlay: Symmetric relation, unbounded caps,
	// RandomWire(Degree) from the topology stream.
	Net *topology.Network
	// MaxDegree is the largest neighbor-list length after wiring (the
	// symmetric regime can push nodes past Degree); live nodes use it
	// as their neighbor capacity so no world edge is ever dropped.
	MaxDegree int

	holders []map[core.Key]struct{}
	plan    *rng.Stream
}

// QuerySpec is one entry of the deterministic query plan.
type QuerySpec struct {
	Key    core.Key
	Origin topology.NodeID
}

// BuildWorld derives the world. The stream-split layout is fixed —
// topology first, placement second, query plan third — so the same
// parameters always yield the same graph, content and plan.
func BuildWorld(seed uint64, nodes, degree, keys, replicas int) *World {
	root := rng.New(seed)
	topoStream := root.Split()
	placeStream := root.Split()
	planStream := root.Split()

	w := &World{
		Nodes: nodes, Degree: degree, Keys: keys, Replicas: replicas,
		Seed:    seed,
		Net:     topology.NewNetwork(topology.Symmetric, nodes, 0, 0),
		holders: make([]map[core.Key]struct{}, nodes),
		plan:    planStream,
	}
	topology.RandomWire(w.Net, degree, topoStream.Intn)
	for i := range w.holders {
		w.holders[i] = make(map[core.Key]struct{})
		if l := len(w.Net.Out(topology.NodeID(i))); l > w.MaxDegree {
			w.MaxDegree = l
		}
	}
	for k := 0; k < keys; k++ {
		for r := 0; r < replicas; r++ {
			w.holders[placeStream.Intn(nodes)][core.Key(k)] = struct{}{}
		}
	}
	return w
}

// HasContent implements core.Content.
func (w *World) HasContent(id topology.NodeID, key core.Key) bool {
	_, ok := w.holders[id][key]
	return ok
}

// StoreFor returns node id's live content store.
func (w *World) StoreFor(id topology.NodeID) live.MapStore {
	s := live.MapStore{}
	for k := range w.holders[id] {
		s.Add(k)
	}
	return s
}

// WireInto replays the world's adjacency into a fresh network (the
// simulated twin's). dst must be Symmetric with room for MaxDegree
// neighbors; duplicate-edge Connect failures are expected (each
// symmetric edge is visited from both endpoints).
func (w *World) WireInto(dst *topology.Network) {
	for i := 0; i < w.Nodes; i++ {
		id := topology.NodeID(i)
		for _, nb := range w.Net.Out(id) {
			dst.Connect(id, nb)
		}
	}
}

// QueryPlan draws the next n entries of the deterministic query plan:
// uniform keys over the catalog, uniform origins over the cluster.
// Consecutive calls continue the same sequence; two Worlds built from
// the same parameters produce the same plan.
func (w *World) QueryPlan(n int) []QuerySpec {
	out := make([]QuerySpec, n)
	for i := range out {
		out[i] = QuerySpec{
			Key:    core.Key(w.plan.Intn(w.Keys)),
			Origin: topology.NodeID(w.plan.Intn(w.Nodes)),
		}
	}
	return out
}
