// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp fig1a [-scale full|ci] [-seed N] [-workers N] [-csv]
//	repro -only fig1,fig3b -json [-out runs]
//
// Experiments: fig1 fig2 fig3a fig3b all (plus the single-table
// aliases fig1a fig1b fig2a fig2b), the ablations: directed iterdeep
// localindex asym benefit drift webcache peerolap, and the engine
// stress families: scale (1k/10k/100k/1M-node cascade sweeps plus the
// CSR re-freeze cell), policies (the pkg/search forward-policy
// registry swept over one network; -list-policies prints the
// registry), skew (the session-driver grid: Zipf skew × churn ×
// policy plus a flash-crowd cell), and churnserve (saturated serving
// under churn: stop-the-world re-freeze vs zero-downtime epoch swaps,
// emitting BENCH_churnserve.json). -list prints every family with a
// one-line description.
//
// -cpuprofile/-memprofile write pprof profiles of the selected run, so
// hot-path work is measurable without editing code:
//
//	repro -exp scale -workers 1 -cpuprofile cpu.pprof
//
// All selected experiments decompose into independent simulation cells
// that shard across one bounded worker pool (internal/runner). Results
// are bit-for-bit identical at any -workers value. With -json, the
// per-cell outputs land in <out>/<name>/cells.json (deterministic —
// diff it across commits) and <out>/<name>/summary.json (timing and
// failure metadata); experiments with wall-clock side measurements
// (scale, churnserve) additionally write <out>/<name>/BENCH_<exp>.json
// (machine-dependent — never diffed, tracked as the perf trajectory).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/pkg/search"
)

func main() {
	os.Exit(run())
}

// run is main behind an exit code so the profiling defers below fire
// before the process exits (os.Exit skips deferred functions).
func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment family (see -list): fig1 ... scale policies skew, or all")
		only     = flag.String("only", "", "comma-separated experiment subset (overrides -exp)")
		scale    = flag.String("scale", "ci", "scale: full (paper, minutes) or ci (reduced, seconds)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.Bool("json", false, "write runs/<name>/{cells,summary}.json artifacts")
		outRoot  = flag.String("out", "runs", "artifact root directory (with -json)")
		runName  = flag.String("name", "", "artifact run name (default <exp>-<scale>-s<seed>)")
		progress = flag.Bool("progress", false, "report per-cell progress and ETA on stderr")
		list     = flag.Bool("list", false, "list the experiment families with descriptions and exit")
		policies = flag.Bool("list-policies", false, "list the pkg/search forward-policy registry and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run here")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (post-run) here")
	)
	flag.Parse()

	// Profiling hooks: the hot-path work of this repository is driven
	// through repro, so make it measurable without editing code.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpuprofile: %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "repro:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "repro:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "memprofile: %s\n", *memProf)
		}()
	}

	if *list {
		// The registry is the single source of truth for what -exp
		// accepts; scale and seed only affect cell contents, not the
		// set of families.
		w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		for _, d := range experiments.Registry(experiments.CI, 1) {
			fmt.Fprintf(w, "%s\t%d cells\t%s\n", d.Name, len(d.Cells), d.About)
		}
		w.Flush()
		fmt.Println("aliases: fig1a fig1b fig2a fig2b (single tables of fig1/fig2)")
		return 0
	}

	if *policies {
		// The policies experiment sweeps these; cmd/dsearch selects them
		// with -policy. One registry backs both.
		fmt.Println(strings.Join(search.PolicyNames(), "\n"))
		return 0
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	defs, label, err := selectDefs(*exp, *only, sc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Aliases of one canonical experiment (fig1a and fig1b both resolve
	// to fig1's cells) must share one cell slice: dedupe by the cells'
	// experiment tag so nothing simulates twice and cells.json carries
	// no duplicate entries.
	type job struct {
		def      experiments.Definition
		off, len int
		// owns marks the job whose Definition contributed the cells
		// (duplicated selections alias it). Only the owning job's Run
		// closures execute, so only its Perf collector holds samples.
		owns bool
	}
	var (
		cells   []runner.Cell
		jobs    []job
		offsets = map[string]int{}
	)
	for _, d := range defs {
		canonical := d.Cells[0].Experiment
		off, seen := offsets[canonical]
		if !seen {
			off = len(cells)
			offsets[canonical] = off
			cells = append(cells, d.Cells...)
		}
		jobs = append(jobs, job{def: d, off: off, len: len(d.Cells), owns: !seen})
	}

	opts := runner.Options{Workers: *workers, Retries: 1}
	if *progress {
		opts.OnProgress = func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "repro: %d/%d cells (%s/%s done), elapsed %.1fs, eta %.1fs\n",
				p.Done, p.Total, p.Experiment, p.Cell, p.Elapsed.Seconds(), p.ETA.Seconds())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	results, runErr := runner.Run(ctx, cells, opts)
	elapsed := time.Since(start)

	if *jsonOut {
		name := *runName
		if name == "" {
			name = fmt.Sprintf("%s-%s-s%d", label, sc, *seed)
		}
		dir, err := runner.WriteArtifacts(*outRoot, runner.RunInfo{
			Name:        name,
			Labels:      map[string]string{"scale": sc.String(), "experiments": label},
			BaseSeed:    *seed,
			Workers:     *workers,
			WallSeconds: elapsed.Seconds(),
		}, results)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "artifacts: %s\n", dir)

		// Wall-clock side measurements (BENCH_<exp>.json) ride along
		// with the deterministic artifacts but are never diffed. An
		// interrupted run skips them (its cells never finished); the
		// deterministic artifacts above are always written.
		for _, j := range jobs {
			if j.def.Perf == nil || !j.owns || runErr != nil {
				continue
			}
			rep, err := j.def.Perf(results[j.off : j.off+j.len])
			if err == nil {
				benchPath := filepath.Join(dir, "BENCH_"+j.def.Name+".json")
				err = rep.Write(benchPath)
				if err == nil {
					fmt.Fprintf(os.Stderr, "bench: %s\n", benchPath)
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: %s perf: %v\n", j.def.Name, err)
				return 1
			}
		}
	}

	if runErr != nil {
		fmt.Fprintln(os.Stderr, "repro: run interrupted:", runErr)
		return 1
	}

	exitCode := 0
	for _, j := range jobs {
		tables, err := j.def.Tables(results[j.off : j.off+j.len])
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", j.def.Name, err)
			exitCode = 1
			continue
		}
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
	fmt.Fprintf(os.Stderr, "[%s scale, seed %d, %d cells, %.1fs]\n",
		sc, *seed, len(cells), elapsed.Seconds())
	return exitCode
}

// selectDefs resolves the -exp/-only flags to experiment definitions
// plus a short label for the artifact name.
func selectDefs(exp, only string, sc experiments.Scale, seed uint64) ([]experiments.Definition, string, error) {
	names := []string{}
	switch {
	case only != "":
		for _, n := range strings.Split(only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			return nil, "", fmt.Errorf("repro: -only selected nothing")
		}
	case exp == "all":
		return experiments.Registry(sc, seed), "all", nil
	default:
		names = []string{exp}
	}
	var defs []experiments.Definition
	for _, n := range names {
		d, err := experiments.Find(n, sc, seed)
		if err != nil {
			return nil, "", err
		}
		defs = append(defs, d)
	}
	return defs, strings.Join(names, "+"), nil
}
