package driver

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Arrivals is a per-node query arrival process. Schedule arms the
// process for one node on the engine: fire is invoked at each arrival
// instant while online() holds; the process self-suspends when
// online() turns false and is re-armed by the returned resume function
// (the session calls it on login, or immediately when the node never
// churns). All randomness must come from s so runs stay deterministic.
type Arrivals interface {
	Schedule(e *sim.Engine, s *rng.Stream, online func() bool, fire func(now float64)) (resume func())
	// Validate reports parameter errors; Spec.Validate calls it before
	// any stream is split.
	Validate() error
}

// Poisson is a homogeneous Poisson arrival process — the query model
// of every paper application ("when on-line, each user will issue
// queries with the same frequency").
type Poisson struct {
	// RatePerHour is the per-node arrival rate.
	RatePerHour float64
}

// Validate implements Arrivals.
func (p Poisson) Validate() error {
	return workload.QueryConfig{RatePerHour: p.RatePerHour}.Validate()
}

// Schedule implements Arrivals via workload.ScheduleQueries, keeping
// the draw sequence (arm: one Exp; per arrival: fire, then one Exp)
// identical to what the applications historically did inline.
func (p Poisson) Schedule(e *sim.Engine, s *rng.Stream, online func() bool, fire func(now float64)) func() {
	return workload.ScheduleQueries(e, s, workload.QueryConfig{RatePerHour: p.RatePerHour}, online, fire)
}

// FlashCrowd is a non-homogeneous Poisson process: the base rate
// multiplied by Peak during the window [StartHour, StartHour +
// DurationHours). It models the flash-crowd scenario of the skew
// experiment family — demand spikes onto the network faster than any
// reconfiguration process can follow.
//
// Sampling is by thinning against the peak rate: candidate arrivals
// come from a homogeneous Poisson at BaseRatePerHour*Peak and are
// accepted with probability rate(t)/peakRate, which keeps the process
// exact and the per-node draw sequence a pure function of the stream
// (two draws per candidate: one acceptance uniform, one Exp wait).
type FlashCrowd struct {
	// BaseRatePerHour is the off-window per-node rate.
	BaseRatePerHour float64
	// Peak multiplies the rate inside the window (>= 1).
	Peak float64
	// StartHour and DurationHours position the window in simulated
	// hours.
	StartHour, DurationHours float64
}

// Validate implements Arrivals.
func (f FlashCrowd) Validate() error {
	switch {
	case f.BaseRatePerHour <= 0:
		return fmt.Errorf("driver: non-positive flash-crowd base rate %v", f.BaseRatePerHour)
	case f.Peak < 1:
		return fmt.Errorf("driver: flash-crowd peak %v < 1", f.Peak)
	case f.StartHour < 0 || f.DurationHours <= 0:
		return fmt.Errorf("driver: flash-crowd window [%vh, +%vh) invalid", f.StartHour, f.DurationHours)
	}
	return nil
}

// InWindow reports whether simulated time t (seconds) is inside the
// ramp window.
func (f FlashCrowd) InWindow(t float64) bool {
	start := f.StartHour * 3600
	return t >= start && t < start+f.DurationHours*3600
}

// rate returns the instantaneous per-hour rate at time t.
func (f FlashCrowd) rate(t float64) float64 {
	if f.InWindow(t) {
		return f.BaseRatePerHour * f.Peak
	}
	return f.BaseRatePerHour
}

// Schedule implements Arrivals: a homogeneous candidate process at the
// peak rate (delegated to workload.ScheduleQueries, which owns the
// arm/suspend/resume scaffolding exactly as Poisson does) with each
// candidate thinned to rate(t)/peakRate. The uniform is drawn on every
// candidate, so accepted and rejected candidates consume identical
// stream prefixes.
func (f FlashCrowd) Schedule(e *sim.Engine, s *rng.Stream, online func() bool, fire func(now float64)) func() {
	peak := f.BaseRatePerHour * f.Peak
	return workload.ScheduleQueries(e, s, workload.QueryConfig{RatePerHour: peak}, online,
		func(now float64) {
			if s.Float64()*peak < f.rate(now) {
				fire(now)
			}
		})
}
