package peerolap

import (
	"testing"

	"repro/internal/workload"
)

// tinyConfig runs in well under a second.
func tinyConfig(mode Mode) Config {
	c := DefaultConfig(mode)
	// 60 peers with a TTL-2 reach of ~16 keeps the searched fraction
	// small enough that neighbor choice matters.
	c.Olap = workload.OlapConfig{
		Chunks:             4800,
		Regions:            12,
		PopularityTheta:    0.9,
		Peers:              60,
		LocalFraction:      0.8,
		ChunksPerQueryMean: 4,
		QueriesPerHour:     30,
	}
	c.CacheChunks = 150
	c.DurationHours = 16
	return c
}

func TestModeString(t *testing.T) {
	if Static.String() == "" || Dynamic.String() == "" || Static.String() == Dynamic.String() {
		t.Fatal("mode names wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(Dynamic).Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"zero neighbors":       func(c *Config) { c.Neighbors = 0 },
		"zero cache":           func(c *Config) { c.CacheChunks = 0 },
		"zero TTL":             func(c *Config) { c.SearchTTL = 0 },
		"zero threshold":       func(c *Config) { c.ReconfigThreshold = 0 },
		"zero warehouse cost":  func(c *Config) { c.WarehouseCostMean = 0 },
		"peer above warehouse": func(c *Config) { c.PeerCostMean = c.WarehouseCostMean },
		"zero duration":        func(c *Config) { c.DurationHours = 0 },
	} {
		c := DefaultConfig(Dynamic)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestChunksPartitionIntoOutcomes(t *testing.T) {
	m := New(tinyConfig(Dynamic)).Run()
	req := m.ChunkRequests.Total()
	if req == 0 {
		t.Fatal("no chunk requests")
	}
	sum := m.LocalChunks.Total() + m.PeerChunks.Total() + m.WarehouseChunks.Total()
	if sum != req {
		t.Fatalf("outcomes %v do not partition chunk requests %v", sum, req)
	}
	if m.QueryCost.N() != uint64(m.Queries.Total()) {
		t.Fatalf("cost observations %d != queries %v", m.QueryCost.N(), m.Queries.Total())
	}
}

func TestDynamicReconfigures(t *testing.T) {
	m := New(tinyConfig(Dynamic)).Run()
	if m.Reconfigurations == 0 {
		t.Fatal("dynamic PeerOlap never reconfigured")
	}
}

func TestStaticDoesNotReconfigure(t *testing.T) {
	m := New(tinyConfig(Static)).Run()
	if m.Reconfigurations != 0 {
		t.Fatal("static PeerOlap reconfigured")
	}
}

func TestDynamicReducesQueryCost(t *testing.T) {
	sm := New(tinyConfig(Static)).Run()
	dm := New(tinyConfig(Dynamic)).Run()
	if dm.QueryCost.Mean() >= sm.QueryCost.Mean() {
		t.Fatalf("dynamic query cost %v not below static %v",
			dm.QueryCost.Mean(), sm.QueryCost.Mean())
	}
}

func TestDynamicImprovesPeerHitRatio(t *testing.T) {
	sm := New(tinyConfig(Static)).Run()
	dm := New(tinyConfig(Dynamic)).Run()
	if dm.PeerHitRatio(8, 16) <= sm.PeerHitRatio(8, 16) {
		t.Fatalf("dynamic peer-hit ratio %v not above static %v",
			dm.PeerHitRatio(8, 16), sm.PeerHitRatio(8, 16))
	}
}

func TestCachesWarmOverTime(t *testing.T) {
	m := New(tinyConfig(Static)).Run()
	if m.LocalChunks.Bucket(15) <= m.LocalChunks.Bucket(0) {
		t.Fatalf("caches never warmed: %v vs %v",
			m.LocalChunks.Bucket(0), m.LocalChunks.Bucket(15))
	}
}

func TestNetworkRemainsConsistent(t *testing.T) {
	s := New(tinyConfig(Dynamic))
	s.Run()
	if !s.Network().Consistent() {
		t.Fatal("network inconsistent after run")
	}
}

func TestDeterministic(t *testing.T) {
	a := New(tinyConfig(Dynamic)).Run()
	b := New(tinyConfig(Dynamic)).Run()
	if a.ChunkRequests.Total() != b.ChunkRequests.Total() ||
		a.QueryCost.Mean() != b.QueryCost.Mean() ||
		a.Reconfigurations != b.Reconfigurations {
		t.Fatal("identical seeds diverged")
	}
}

func TestQueryCostBounded(t *testing.T) {
	c := tinyConfig(Static)
	m := New(c).Run()
	// A query has at most 64 chunks, each costing at most 2x warehouse
	// mean.
	if m.QueryCost.Max() > 64*2*c.WarehouseCostMean {
		t.Fatalf("query cost %v exceeds bound", m.QueryCost.Max())
	}
	if m.QueryCost.Min() < 0 {
		t.Fatalf("negative query cost %v", m.QueryCost.Min())
	}
}
