// Package sim provides the discrete-event simulation engine on which
// every experiment in this repository runs.
//
// The engine is deliberately single-threaded: the paper's experiments
// need bit-for-bit reproducibility across runs and machines, and the
// per-event work (a query cascade over at most a few hundred nodes) is
// far too small to amortize cross-goroutine handoff. Parallelism in
// this repository lives one level up — independent experiment
// configurations run concurrently in the benchmark harness — and in the
// internal/live runtime, which executes the same framework code on real
// goroutines.
//
// Time is a float64 number of simulated seconds. The engine guarantees
// that events fire in non-decreasing time order with FIFO tie-breaking,
// and that handlers observe Now() equal to their scheduled time.
package sim

import (
	"fmt"
	"math"

	"repro/internal/eventq"
)

// Handler is the callback type invoked when an event fires.
type Handler func(e *Engine)

// Event is a cancellable handle to a scheduled handler.
type Event struct {
	item    *eventq.Item
	handler Handler
}

// Engine is a discrete-event simulator clock plus pending-event set.
type Engine struct {
	queue     *eventq.Queue
	now       float64
	processed uint64
	stopped   bool
	horizon   float64 // events past this time are silently dropped; 0 = none
}

// New returns an engine with the clock at 0 and no horizon.
func New() *Engine {
	return &Engine{queue: eventq.New(), horizon: math.Inf(1)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled but not yet fired events.
func (e *Engine) Pending() int { return e.queue.Len() }

// SetHorizon discards any event scheduled strictly after t. Existing
// pending events are not affected; the horizon applies to future At/In
// calls. Use it to avoid filling the queue with events beyond the
// simulation end.
func (e *Engine) SetHorizon(t float64) { e.horizon = t }

// At schedules h at absolute time t. Scheduling in the past (t < Now)
// panics: it is always a model bug and silently reordering the past
// would corrupt causality. Events beyond the horizon return a nil
// handle and are dropped.
func (e *Engine) At(t float64, h Handler) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at t=%v before now=%v", t, e.now))
	}
	if h == nil {
		panic("sim: nil handler")
	}
	if t > e.horizon {
		return nil
	}
	ev := &Event{handler: h}
	ev.item = e.queue.Push(t, ev)
	return ev
}

// In schedules h after a relative delay d >= 0.
func (e *Engine) In(d float64, h Handler) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, h)
}

// Cancel removes a pending event; it reports whether the event was
// still pending. Cancelling a nil or already-fired event is a no-op.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil {
		return false
	}
	return e.queue.Cancel(ev.item)
}

// Stop makes Run return after the current handler completes. Pending
// events remain queued; a subsequent Run call resumes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest event. It reports whether an event was
// available.
func (e *Engine) Step() bool {
	it := e.queue.Pop()
	if it == nil {
		return false
	}
	e.now = it.Time
	e.processed++
	it.Value.(*Event).handler(e)
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled after t stay pending.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now=%v", t, e.now))
	}
	e.stopped = false
	for !e.stopped {
		next := e.queue.Peek()
		if next == nil || next.Time > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Ticker invokes h every period seconds starting at start, until cancel
// is called or the horizon cuts it off. It returns a cancel function.
func (e *Engine) Ticker(start, period float64, h Handler) (cancel func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	var ev *Event
	stopped := false
	var tick Handler
	tick = func(en *Engine) {
		if stopped {
			return
		}
		h(en)
		if !stopped {
			ev = en.In(period, tick)
		}
	}
	ev = e.At(start, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}
