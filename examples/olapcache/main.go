// Olapcache runs the PeerOlap-like case study: workstations cache OLAP
// result chunks; queries decompose into chunks answered locally, by
// peers, or by the (expensive) data warehouse. The benefit function is
// saved processing cost. Run with:
//
//	go run ./examples/olapcache
package main

import (
	"flag"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/peerolap"
	"repro/internal/workload"
)

func main() {
	var (
		hours = flag.Int("hours", 24, "simulated hours")
		seed  = flag.Uint64("seed", 1, "experiment seed")
	)
	flag.Parse()

	run := func(mode peerolap.Mode) *peerolap.Metrics {
		cfg := peerolap.DefaultConfig(mode)
		// Sharper analyst communities than the default: reconfiguration
		// pays off when a TTL-2 search covers only a fraction of the
		// network and same-region peers are worth finding.
		cfg.Olap = workload.OlapConfig{
			Chunks: 4800, Regions: 12, PopularityTheta: 0.9,
			Peers: 60, LocalFraction: 0.8, ChunksPerQueryMean: 4,
			QueriesPerHour: 30,
		}
		cfg.CacheChunks = 150
		cfg.DurationHours = *hours
		cfg.Seed = *seed
		return peerolap.New(cfg).Run()
	}
	static := run(peerolap.Static)
	dynamic := run(peerolap.Dynamic)

	table := metrics.NewTable("PeerOlap chunk caching (60 peers)",
		"variant", "mean query cost (s)", "local %", "peer %", "warehouse %")
	for _, v := range []struct {
		name string
		m    *peerolap.Metrics
	}{{"static", static}, {"dynamic", dynamic}} {
		req := v.m.ChunkRequests.Total()
		table.AddRow(v.name,
			v.m.QueryCost.Mean(),
			100*v.m.LocalChunks.Total()/req,
			100*v.m.PeerChunks.Total()/req,
			100*v.m.WarehouseChunks.Total()/req)
	}
	fmt.Println(table)
	fmt.Printf("dynamic reconfigurations: %d\n", dynamic.Reconfigurations)
	saved := static.QueryCost.Mean() - dynamic.QueryCost.Mean()
	fmt.Printf("dynamic saves %.2f s per query (%.0f%%)\n",
		saved, 100*saved/static.QueryCost.Mean())
}
