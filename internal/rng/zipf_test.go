package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRankRange(t *testing.T) {
	z := NewZipf(50, 0.9)
	s := New(1)
	for i := 0; i < 100000; i++ {
		r := z.Rank(s)
		if r < 1 || r > 50 {
			t.Fatalf("rank %d out of [1,50]", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With θ = 0.9 over 50 ranks, rank 1 must be sampled far more often
	// than rank 50 (p1/p50 = 50^0.9 ≈ 33.8).
	z := NewZipf(50, 0.9)
	s := New(2)
	counts := make([]int, 51)
	const n = 500000
	for i := 0; i < n; i++ {
		counts[z.Rank(s)]++
	}
	ratio := float64(counts[1]) / float64(counts[50])
	want := math.Pow(50, 0.9)
	if ratio < want*0.7 || ratio > want*1.3 {
		t.Fatalf("p1/p50 ratio = %v, want ~%v", ratio, want)
	}
}

func TestZipfEmpiricalMatchesP(t *testing.T) {
	z := NewZipf(10, 0.9)
	s := New(3)
	counts := make([]int, 11)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[z.Rank(s)]++
	}
	for r := 1; r <= 10; r++ {
		got := float64(counts[r]) / n
		want := z.P(r)
		if math.Abs(got-want) > 4*math.Sqrt(want/n)+0.001 {
			t.Fatalf("rank %d empirical p=%v, analytic p=%v", r, got, want)
		}
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(4, 0)
	for r := 1; r <= 4; r++ {
		if math.Abs(z.P(r)-0.25) > 1e-12 {
			t.Fatalf("θ=0 rank %d has p=%v, want 0.25", r, z.P(r))
		}
	}
}

func TestZipfPMassSumsToOne(t *testing.T) {
	z := NewZipf(200, 0.9)
	sum := 0.0
	for r := 1; r <= 200; r++ {
		sum += z.P(r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probability mass sums to %v", sum)
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	z := NewZipf(1000, 0.9)
	prev := 0.0
	for r := 1; r <= 1000; r++ {
		c := z.CDF(r)
		if c < prev {
			t.Fatalf("CDF decreased at rank %d: %v < %v", r, c, prev)
		}
		prev = c
	}
	if z.CDF(1000) != 1 {
		t.Fatalf("CDF(N) = %v, want 1", z.CDF(1000))
	}
}

func TestZipfCDFBoundaries(t *testing.T) {
	z := NewZipf(5, 0.9)
	if z.CDF(0) != 0 {
		t.Fatalf("CDF(0) = %v", z.CDF(0))
	}
	if z.CDF(6) != 1 {
		t.Fatalf("CDF(N+1) = %v", z.CDF(6))
	}
	if z.P(0) != 0 || z.P(6) != 0 {
		t.Fatal("P outside support must be 0")
	}
}

func TestZipfSingleRank(t *testing.T) {
	z := NewZipf(1, 0.9)
	s := New(4)
	for i := 0; i < 100; i++ {
		if z.Rank(s) != 1 {
			t.Fatal("N=1 Zipf must always return rank 1")
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
	}{{0, 0.9}, {-1, 0.9}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%d, %v) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(tc.n, tc.theta)
		}()
	}
}

func TestZipfIndexIsRankMinusOne(t *testing.T) {
	z := NewZipf(100, 0.9)
	a, b := New(5), New(5)
	for i := 0; i < 1000; i++ {
		if z.Index(a) != z.Rank(b)-1 {
			t.Fatal("Index and Rank disagree")
		}
	}
}

func TestQuickZipfRankInSupport(t *testing.T) {
	f := func(seed uint64, n uint8, theta10 uint8) bool {
		size := int(n)%100 + 1
		theta := float64(theta10%30) / 10
		z := NewZipf(size, theta)
		s := New(seed)
		r := z.Rank(s)
		return r >= 1 && r <= size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickZipfCDFMonotone(t *testing.T) {
	f := func(n uint8, theta10 uint8) bool {
		size := int(n)%200 + 2
		theta := float64(theta10%25) / 10
		z := NewZipf(size, theta)
		prev := 0.0
		for r := 1; r <= size; r++ {
			c := z.CDF(r)
			if c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(4000, 0.9)
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Rank(s)
	}
}
