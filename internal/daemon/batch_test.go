package daemon

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/pkg/searchclient"
)

// batchDaemon boots a small chan-transport cluster for batch tests.
func batchDaemon(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { _ = srv.Drain(context.Background()) })
	return srv
}

// reasonSet canonicalizes a degraded-reason list for comparison.
func reasonSet(rs []string) string {
	cp := append([]string(nil), rs...)
	sort.Strings(cp)
	return strings.Join(cp, ",")
}

// holderDist is the BFS distance from origin to the nearest holder of
// key over the world graph, or maxd+1 when no holder lies within maxd
// hops. The equivalence harness keeps only order-proof queries: live
// flood suppression is first-copy-wins, so a relay whose first copy
// arrived via a longer route may have its TTL exhausted and cut the
// short path — any query whose nearest replica lies 2..TTL hops out
// can legitimately flip with message ordering. Distance 1 is a
// guaranteed hit (the origin always sends to every neighbor, and a
// node's first copy — whatever its route — gets exactly one store
// check), and distance > TTL is a guaranteed miss (hop counting is
// exact, reach can only shrink).
//
// The origin's own store is deliberately ignored: a live node never
// answers its own query (QueryInfo floods to neighbors without a
// local store check), so the distance that decides the outcome is
// always the one to another holder.
func holderDist(w *World, origin topology.NodeID, key core.Key, maxd int) int {
	dist := map[topology.NodeID]int{origin: 0}
	queue := []topology.NodeID{origin}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		if d >= maxd {
			continue
		}
		for _, nb := range w.Net.Out(cur) {
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = d + 1
			if w.HasContent(nb, key) {
				return d + 1
			}
			queue = append(queue, nb)
		}
	}
	return maxd + 1
}

// TestBatchSequentialEquivalence is the hit-rate contract of the batch
// plane: one POST /v1/query/batch of 1k queries must produce, query by
// query, the same hit outcome and the same degraded-reason set as 1k
// single POST /v1/query calls against an identical cluster. Flood over
// a shared deterministic graph is reachability, so the outcomes are
// not statistical — they must match exactly.
func TestBatchSequentialEquivalence(t *testing.T) {
	const (
		nodes, degree, ttl = 50, 3, 3
		keys, replicas     = 200, 3
		seed               = 42
		queries            = 1000
		workers            = 16
	)
	// Per-query equality demands a drop-free, timing-proof run: modest
	// concurrency keeps every inbox far from its cap (asserted below),
	// and a collection window far above the sub-millisecond flood RTT
	// means a reachable hit always beats the window — the outcome is
	// pure reachability, not scheduling. Higher concurrency lives in
	// the hammer test; the throughput story in BenchmarkDaemonREST.
	cfg := Config{
		Nodes: nodes, Degree: degree, TTL: ttl,
		Keys: keys, Replicas: replicas, Seed: seed,
		QueryWindowMillis: 200, BatchWorkers: workers,
	}
	srv := batchDaemon(t, cfg)

	// Draw from a longer plan and keep the first 1k order-proof
	// queries: nearest (non-origin) replica at a direct neighbor
	// (certain hit) or beyond the TTL ball (certain miss) — see
	// holderDist for why anything in between may flip.
	w := BuildWorld(seed, nodes, degree, keys, replicas)
	var reqs []searchclient.QueryRequest
	for _, q := range w.QueryPlan(8 * queries) {
		if d := holderDist(w, q.Origin, q.Key, ttl); d > 1 && d <= ttl {
			continue
		}
		origin := int(q.Origin)
		reqs = append(reqs, searchclient.QueryRequest{
			Key: uint64(q.Key), Origin: &origin, MaxHits: 1,
		})
		if len(reqs) == queries {
			break
		}
	}
	if len(reqs) < queries {
		t.Fatalf("only %d/%d stable queries in the extended plan", len(reqs), queries)
	}

	client := fanClient(srv.Addr(), workers)
	ctx := context.Background()

	// Single-query reference run, same concurrency as the batch's
	// resident workers so saturation (if any) is comparable.
	singleHit := make([]bool, len(reqs))
	singleReasons := make([]string, len(reqs))
	var failures atomic.Int64
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := client.Query(ctx, reqs[i])
			if err != nil {
				failures.Add(1)
				return
			}
			singleHit[i] = resp.Found()
			singleReasons[i] = reasonSet(resp.DegradedReasons)
		}(i)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d/%d single queries failed", n, queries)
	}

	batch, err := client.QueryBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(batch.Results) != len(reqs) {
		t.Fatalf("batch answered %d results for %d queries", len(batch.Results), len(reqs))
	}

	singleHits, batchHits, mismatches := 0, 0, 0
	for i := range reqs {
		it := &batch.Results[i]
		if !it.OK() {
			t.Fatalf("batch item %d failed: %d %s", i, it.Status, it.Error)
		}
		if singleHit[i] {
			singleHits++
		}
		if it.Found() {
			batchHits++
		}
		if it.Found() != singleHit[i] {
			mismatches++
			t.Logf("mismatch %d: key %d origin %d dist %d: single=%v batch=%v",
				i, reqs[i].Key, *reqs[i].Origin,
				holderDist(w, topology.NodeID(*reqs[i].Origin), core.Key(reqs[i].Key), ttl),
				singleHit[i], it.Found())
		}
		if got := reasonSet(it.DegradedReasons); got != singleReasons[i] {
			t.Fatalf("item %d degraded reasons: batch %q vs single %q", i, got, singleReasons[i])
		}
	}
	if dropped := srv.nodeStats.InboxDropped.Load(); dropped != 0 {
		t.Fatalf("%d inbox drops — the harness saturated the cluster, outcomes are not comparable", dropped)
	}
	if mismatches != 0 || singleHits != batchHits {
		t.Fatalf("hit outcomes diverged: single %d, batch %d, %d per-query mismatches",
			singleHits, batchHits, mismatches)
	}
	t.Logf("equivalent: %d/%d hits both ways", batchHits, queries)
}

// TestBatchValidation pins the error split: body-level problems fail
// the whole batch with 400, item-level problems fail only the item
// inside a 200.
func TestBatchValidation(t *testing.T) {
	srv := batchDaemon(t, Config{
		Nodes: 8, Degree: 3, TTL: 3, Keys: 16, Replicas: 2, Seed: 7,
		QueryWindowMillis: 50, MaxBatch: 4,
	})
	client := searchclient.New(srv.Addr(), searchclient.WithRetry(0, 0))
	ctx := context.Background()

	wantStatus := func(err error, status int) {
		t.Helper()
		var he *searchclient.Error
		if !errors.As(err, &he) || he.Status != status {
			t.Fatalf("want HTTP %d, got %v", status, err)
		}
	}

	// Whole-batch 400s: empty slab, slab over max_batch.
	_, err := client.QueryBatch(ctx, nil)
	wantStatus(err, 400)
	_, err = client.QueryBatch(ctx, make([]searchclient.QueryRequest, 5))
	wantStatus(err, 400)

	// Item-level failures ride inside a 200 next to successes.
	badOrigin := 99
	resp, err := client.QueryBatch(ctx, []searchclient.QueryRequest{
		{Key: 3, MaxHits: 1},                     // fine
		{Key: 999},                               // outside the catalog
		{Key: 3, Policy: "no-such-policy"},       // unknown policy
		{Key: 3, Origin: &badOrigin, MaxHits: 1}, // not hosted here
	})
	if err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	if !resp.Results[0].OK() {
		t.Fatalf("valid item failed: %d %s", resp.Results[0].Status, resp.Results[0].Error)
	}
	for i := 1; i <= 3; i++ {
		if resp.Results[i].Status != 400 || resp.Results[i].Error == "" {
			t.Fatalf("item %d: want per-item 400, got %d %q",
				i, resp.Results[i].Status, resp.Results[i].Error)
		}
	}
	if err := resp.BatchStatusError(); err == nil {
		t.Fatal("BatchStatusError missed the failing items")
	}
}

// TestBatchPauseResume: a paused daemon refuses the whole slab with
// 503 (batch-atomic admission — no partial admission), and serves it
// again after resume.
func TestBatchPauseResume(t *testing.T) {
	srv := batchDaemon(t, Config{
		Nodes: 8, Degree: 3, TTL: 3, Keys: 16, Replicas: 2, Seed: 7,
		QueryWindowMillis: 50,
	})
	client := searchclient.New(srv.Addr(), searchclient.WithRetry(0, 0))
	ctx := context.Background()
	reqs := []searchclient.QueryRequest{{Key: 1, MaxHits: 1}, {Key: 2, MaxHits: 1}}

	if err := client.Pause(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := client.QueryBatch(ctx, reqs)
	var he *searchclient.Error
	if !errors.As(err, &he) || he.Status != 503 {
		t.Fatalf("paused daemon: want 503 for the whole batch, got %v", err)
	}
	if he.RetryAfter == 0 {
		t.Fatal("503 missing Retry-After hint")
	}

	if err := client.Resume(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := client.QueryBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("after resume: %v", err)
	}
	for i := range resp.Results {
		if !resp.Results[i].OK() {
			t.Fatalf("item %d failed after resume: %s", i, resp.Results[i].Error)
		}
	}
}

// TestBatchSingleMixedHammer runs single queries and batches against
// one daemon concurrently — the race-detector workout for the shared
// runQuery path, pooled buffers and batch workers.
func TestBatchSingleMixedHammer(t *testing.T) {
	const (
		nodes, keys = 16, 32
		hammers     = 4
		rounds      = 8
		slab        = 24
	)
	srv := batchDaemon(t, Config{
		Nodes: nodes, Degree: 3, TTL: 3, Keys: keys, Replicas: 3, Seed: 11,
		QueryWindowMillis: 30, BatchWorkers: 8,
	})
	client := fanClient(srv.Addr(), hammers*2)
	ctx := context.Background()

	var wg sync.WaitGroup
	errc := make(chan error, hammers*2)
	for h := 0; h < hammers; h++ {
		wg.Add(2)
		go func(h int) { // singles
			defer wg.Done()
			for r := 0; r < rounds*slab/4; r++ {
				_, err := client.Query(ctx, searchclient.QueryRequest{
					Key: uint64((h + r) % keys), MaxHits: 1,
				})
				if err != nil {
					errc <- fmt.Errorf("single: %w", err)
					return
				}
			}
		}(h)
		go func(h int) { // batches
			defer wg.Done()
			reqs := make([]searchclient.QueryRequest, slab)
			for r := 0; r < rounds; r++ {
				for i := range reqs {
					reqs[i] = searchclient.QueryRequest{
						Key: uint64((h*slab + r + i) % keys), MaxHits: 1,
					}
				}
				resp, err := client.QueryBatch(ctx, reqs)
				if err != nil {
					errc <- fmt.Errorf("batch: %w", err)
					return
				}
				if err := resp.BatchStatusError(); err != nil {
					errc <- err
					return
				}
			}
		}(h)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestStatsLatencyHistograms: the per-endpoint histograms must show up
// in /v1/stats once their endpoints have been exercised, and only
// then.
func TestStatsLatencyHistograms(t *testing.T) {
	srv := batchDaemon(t, Config{
		Nodes: 8, Degree: 3, TTL: 3, Keys: 16, Replicas: 2, Seed: 7,
		QueryWindowMillis: 30,
	})
	client := searchclient.New(srv.Addr())
	ctx := context.Background()

	if _, err := client.Query(ctx, searchclient.QueryRequest{Key: 1, MaxHits: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.QueryBatch(ctx, []searchclient.QueryRequest{{Key: 2, MaxHits: 1}}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"http_query_count", "http_query_p50_us", "http_query_p95_us", "http_query_p99_us",
		"http_query_batch_count", "http_query_batch_p99_us",
	} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %s (got %d keys)", key, len(stats))
		}
	}
	if stats["http_query_count"] == 0 || stats["http_query_batch_count"] == 0 {
		t.Fatalf("endpoint counts not recorded: %v", stats)
	}
	// An endpoint never hit stays out of the snapshot entirely.
	if _, ok := stats["http_control_pause_count"]; ok {
		t.Fatal("untouched endpoint leaked a histogram into /v1/stats")
	}
	// The query window bounds a probe; its p99 must be sane (< 10s).
	if p99 := stats["http_query_p99_us"]; p99 == 0 || p99 > 10_000_000 {
		t.Fatalf("http_query_p99_us = %d, want a plausible latency", p99)
	}
}
