// Package rng provides the deterministic random-number substrate used by
// every simulation in this repository.
//
// All experiments in the paper are driven by four distributions: Zipf
// (song popularity and user-to-category assignment, θ = 0.9), Gaussian
// (library sizes, mean 200 / σ 50), exponential (on-line and off-line
// session durations, mean 3 h), and a bounded normal (one-way link
// delays, σ = 20 ms). This package implements all of them on top of a
// splittable splitmix64 generator so that every node, workload and
// experiment can own an independent, reproducible stream derived from a
// single experiment seed.
//
// The package intentionally does not use math/rand: reproducibility
// across Go versions matters more here than raw throughput, and
// splitmix64 is both faster than the default source and trivially
// splittable.
package rng

import (
	"fmt"
	"math"
)

// Stream is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; derive one Stream per goroutine with Split.
type Stream struct {
	state uint64
	// spare holds a cached second output of the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a Stream seeded with seed. Two Streams built from the
// same seed produce identical output sequences.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Split derives an independent child stream. The child is seeded from
// the parent's next output mixed with a distinct constant so that
// parent and child sequences do not overlap in practice.
func (s *Stream) Split() *Stream {
	return &Stream{state: mix64(s.Uint64() ^ 0x9e3779b97f4a7c15)}
}

// SplitN derives n independent child streams in one call.
func (s *Stream) SplitN(n int) []*Stream {
	out := make([]*Stream, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// mix64 is the splitmix64 finalizer (Steele, Lea, Flood 2014).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 high bits scaled by 2^-53 gives every representable double in
	// [0,1) with equal probability per ulp-bucket.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	// Lemire's nearly-divisionless bounded sampling. The bias for
	// n < 2^32 is below 2^-32 which is irrelevant at simulation scale,
	// but we still debias with the standard rejection step.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := bits128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// bits128 returns the high and low 64-bit halves of v*bound.
func bits128(v, bound uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0 := v & mask32
	x1 := v >> 32
	y0 := bound & mask32
	y1 := bound >> 32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = v * bound
	return hi, lo
}

// Int63 returns a uniform non-negative int64.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("rng: Exp called with mean=%v", mean))
	}
	// Inverse CDF; guard against Float64 returning exactly 0.
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the polar Box-Muller transform.
func (s *Stream) Normal(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	var u, v, q float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		q = u*u + v*v
		if q > 0 && q < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(q) / q)
	s.spare = v * f
	s.hasSpare = true
	return mean + stddev*u*f
}

// BoundedNormal returns a Normal(mean, stddev) sample truncated by
// rejection to [lo, hi]. This is the paper's link-delay distribution
// ("the standard deviation is set to 20ms ... and values are restricted
// in the interval"). It panics if the interval does not intersect a
// plausible mass region (to catch configuration bugs early).
func (s *Stream) BoundedNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("rng: BoundedNormal interval [%v,%v] is empty", lo, hi))
	}
	if mean+8*stddev < lo || mean-8*stddev > hi {
		panic(fmt.Sprintf("rng: BoundedNormal interval [%v,%v] is >8σ from mean %v", lo, hi, mean))
	}
	for i := 0; ; i++ {
		x := s.Normal(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
		// Degenerate configurations (interval far in a tail) would make
		// rejection slow; clamp after a generous number of attempts.
		if i == 1024 {
			return math.Min(math.Max(x, lo), hi)
		}
	}
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](s *Stream, xs []T) T {
	return xs[s.Intn(len(xs))]
}

// Sample returns k distinct elements drawn uniformly without
// replacement from xs (reservoir sampling; order is random). If
// k >= len(xs) a shuffled copy of xs is returned.
func Sample[T any](s *Stream, xs []T, k int) []T {
	if k < 0 {
		panic("rng: Sample with negative k")
	}
	if k >= len(xs) {
		out := make([]T, len(xs))
		copy(out, xs)
		s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	out := make([]T, k)
	copy(out, xs[:k])
	for i := k; i < len(xs); i++ {
		j := s.Intn(i + 1)
		if j < k {
			out[j] = xs[i]
		}
	}
	s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
