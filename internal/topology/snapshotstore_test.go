package topology

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// adjacency materializes a graph view as a per-node copy of its
// outgoing lists, the common currency of the identity assertions.
func adjacency(out func(NodeID) []NodeID, n int) [][]NodeID {
	adj := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		adj[i] = append([]NodeID(nil), out(NodeID(i))...)
	}
	return adj
}

// randomDeltas draws a batch of count deltas — rewires, raw
// connects/disconnects and the occasional isolate — from rnd.
func randomDeltas(rnd *rand.Rand, n, count int) []Delta {
	ds := make([]Delta, 0, count)
	for len(ds) < count {
		src := NodeID(rnd.Intn(n))
		dst := NodeID(rnd.Intn(n))
		switch rnd.Intn(8) {
		case 0:
			ds = append(ds, Delta{Op: OpIsolate, Src: src})
		case 1, 2:
			ds = append(ds, Delta{Op: OpDisconnect, Src: src, Dst: dst})
		default:
			ds = append(ds, Delta{Op: OpConnect, Src: src, Dst: dst})
		}
	}
	return ds
}

// wireDegree4 seeds an initial topology (best-effort degree-4) for the
// store tests.
func wireDegree4(net *Network, rnd *rand.Rand) {
	n := net.Len()
	for i := 0; i < n; i++ {
		for attempts := 0; attempts < 8 && net.Node(NodeID(i)).Out.Len() < 4; attempts++ {
			net.Connect(NodeID(i), NodeID(rnd.Intn(n)))
		}
	}
}

// TestDeltaReplayMatchesFreshFreeze is the churn-delta property suite:
// random interleavings of connects, disconnects, rewires and isolates
// applied as deltas through the store must leave the published
// snapshot byte-identical to a fresh stop-the-world Freeze of an
// independently mutated replica network.
func TestDeltaReplayMatchesFreshFreeze(t *testing.T) {
	const n = 400
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			build := func() *Network {
				rnd := rand.New(rand.NewSource(int64(1000 + trial)))
				net := NewNetwork(Symmetric, n, 4, 4)
				wireDegree4(net, rnd)
				return net
			}
			live, replica := build(), build()
			store := NewSnapshotStore(live)

			rnd := rand.New(rand.NewSource(int64(trial)))
			for epoch := 0; epoch < 10; epoch++ {
				ds := randomDeltas(rnd, n, 50)
				store.Apply(ds)
				replica.ApplyAll(ds)

				pin := store.Acquire()
				got := adjacency(pin.Graph().Out, n)
				want := adjacency(replica.Freeze().Out, n)
				pin.Release()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("epoch %d: store snapshot diverged from fresh freeze", epoch+1)
				}
				// And against the replica's live adjacency: Freeze itself
				// is covered elsewhere, but the triple equality pins the
				// whole chain in one place.
				if liveAdj := adjacency(replica.Out, n); !reflect.DeepEqual(got, liveAdj) {
					t.Fatalf("epoch %d: snapshot diverged from live adjacency", epoch+1)
				}
			}
		})
	}
}

// TestHeldPinSurvivesSwaps is the reclamation argument's load-bearing
// test: a reader that keeps its pin across N publishes must see its
// epoch's adjacency bit-for-bit unchanged — the buffer must never
// re-enter rotation while pinned — and the store must grow beyond the
// double buffer rather than corrupt it.
func TestHeldPinSurvivesSwaps(t *testing.T) {
	const n, swaps = 300, 12
	rnd := rand.New(rand.NewSource(7))
	net := NewNetwork(Symmetric, n, 4, 4)
	wireDegree4(net, rnd)
	store := NewSnapshotStore(net)

	held := store.Acquire()
	if got, want := held.Epoch(), uint64(1); got != want {
		t.Fatalf("initial epoch %d, want %d", got, want)
	}
	frozen := adjacency(held.Graph().Out, n)

	for i := 0; i < swaps; i++ {
		store.Apply(randomDeltas(rnd, n, 40))
		if got := adjacency(held.Graph().Out, n); !reflect.DeepEqual(got, frozen) {
			t.Fatalf("held pin's adjacency changed after swap %d", i+1)
		}
	}
	if got, want := store.Epoch(), uint64(1+swaps); got != want {
		t.Fatalf("store epoch %d after %d swaps, want %d", got, swaps, want)
	}
	// The held pin wedges one buffer out of rotation, so the store
	// needs exactly three: the pinned one plus the alternating pair.
	if got := store.Buffers(); got != 3 {
		t.Fatalf("store grew %d buffers under a held pin, want 3", got)
	}

	held.Release()
	// With the pin gone the buffer re-enters the free list and steady
	// state resumes with no further allocation.
	before := store.Buffers()
	for i := 0; i < swaps; i++ {
		store.Apply(randomDeltas(rnd, n, 40))
	}
	if got := store.Buffers(); got != before {
		t.Fatalf("store allocated %d new buffers after release, want 0", got-before)
	}
}

// TestSteadyStateDoubleBuffer: publishes with no readers (or readers
// that release promptly) must alternate two buffers and allocate
// nothing further.
func TestSteadyStateDoubleBuffer(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	net := NewNetwork(PureAsymmetric, 200, 4, 0)
	wireDegree4(net, rnd)
	store := NewSnapshotStore(net)

	for i := 0; i < 50; i++ {
		pin := store.Acquire()
		store.Apply(randomDeltas(rnd, 200, 10))
		pin.Release()
	}
	if got := store.Buffers(); got > 3 {
		t.Fatalf("steady-state publishing grew %d buffers, want <= 3", got)
	}
}

// TestAcquireRelease covers the pin bookkeeping edges: epoch numbers
// advance by one per publish, Acquire after a publish sees the new
// epoch, and concurrent pins on one epoch are independent.
func TestAcquireRelease(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 10, 2, 0)
	net.Connect(0, 1)
	store := NewSnapshotStore(net)

	a, b := store.Acquire(), store.Acquire()
	if a.Epoch() != 1 || b.Epoch() != 1 {
		t.Fatalf("pins on epochs %d/%d, want 1/1", a.Epoch(), b.Epoch())
	}
	net.Connect(1, 2)
	if got := store.Publish(); got != 2 {
		t.Fatalf("publish returned %d, want 2", got)
	}
	c := store.Acquire()
	if c.Epoch() != 2 {
		t.Fatalf("post-publish pin on epoch %d, want 2", c.Epoch())
	}
	if got := a.Graph().Out(1); len(got) != 0 {
		t.Fatalf("old epoch sees new edge: %v", got)
	}
	if got := c.Graph().Out(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("new epoch adjacency %v, want [2]", got)
	}
	a.Release()
	b.Release()
	c.Release()
}

// TestSnapshotStoreConcurrentReaders hammers Acquire/Release from many
// goroutines across forced swaps under -race: every pinned snapshot
// must be internally consistent (edge slice boundaries sane, no
// mid-freeze tearing), checked by walking the full adjacency of the
// pinned epoch while the writer churns.
func TestSnapshotStoreConcurrentReaders(t *testing.T) {
	const (
		n       = 500
		readers = 16
		walks   = 25 // per reader, spread across the writer's swaps
	)
	rnd := rand.New(rand.NewSource(23))
	net := NewNetwork(Symmetric, n, 4, 4)
	wireDegree4(net, rnd)
	store := NewSnapshotStore(net)

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := 0; w < walks; w++ {
				pin := store.Acquire()
				csr := pin.Graph()
				// Full walk: every neighbor in range, degree sums equal
				// the edge count — a torn snapshot fails loudly here.
				edges := 0
				for i := 0; i < n; i++ {
					for _, nb := range csr.Out(NodeID(i)) {
						if nb < 0 || int(nb) >= n {
							t.Errorf("neighbor %d outside [0,%d)", nb, n)
							pin.Release()
							return
						}
					}
					edges += csr.Degree(NodeID(i))
				}
				if edges != csr.EdgeCount() {
					t.Errorf("degree sum %d != edge count %d", edges, csr.EdgeCount())
					pin.Release()
					return
				}
				pin.Release()
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	// The writer churns until every reader finished its walks, so pins
	// genuinely overlap swaps regardless of scheduling.
	swaps := 0
	for {
		select {
		case <-done:
			if got, want := store.Epoch(), uint64(1+swaps); got != want {
				t.Fatalf("final epoch %d after %d swaps, want %d", got, swaps, want)
			}
			return
		default:
			store.Apply(randomDeltas(rnd, n, 30))
			swaps++
		}
	}
}

// TestRewireDelta checks the two-delta rewire helper round-trips
// through Apply with Network-call semantics.
func TestRewireDelta(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 4, 2, 0)
	net.Connect(0, 1)
	ds := Rewire(0, 1, 2)
	if got := net.ApplyAll(ds[:]); got != 2 {
		t.Fatalf("rewire applied %d deltas, want 2", got)
	}
	if out := net.Out(0); len(out) != 1 || out[0] != 2 {
		t.Fatalf("post-rewire out(0) = %v, want [2]", out)
	}
	// Re-applying is a no-op pair under method semantics: the
	// disconnect fails (edge 0→1 gone) and the connect fails (0→2
	// exists).
	if got := net.ApplyAll(ds[:]); got != 0 {
		t.Fatalf("replayed rewire changed %d, want 0", got)
	}
}
